"""Entropy-coding subsystem: byte-aligned rANS + zero-run RLE.

An alternative lossless tail for the ``codes_entropy`` pipeline stage,
built for the dual-quant code distribution where near-zero residual runs
dominate (see ``docs/PERF.md``).  Three pieces:

* :mod:`repro.rans.coder` — static rANS over a 2^12-normalized
  frequency table with interleaved per-lane states (vectorizable
  encode *and* decode);
* :mod:`repro.rans.rle` — the zero-run pre-pass collapsing dominant-
  symbol runs into (run token, u8 length) pairs;
* :mod:`repro.rans.probe` — the histogram probe ``backend="auto"``
  uses to pick Huffman or rANS per payload.

All hot loops are ``REPRO_KERNELS`` twins (``rans.encode``,
``rans.decode``, ``rle.collapse``, ``rle.expand``); the host-level wire
format and table normalization are mode-independent so payloads are
byte-identical across dispatch modes.
"""

from .coder import (
    MAX_SYMBOLS,
    PROB_BITS,
    PROB_SCALE,
    RANS_L,
    RansTable,
    decode_tokens,
    encode_tokens,
    normalize_freqs,
    pick_lanes,
)
from .probe import CodesProbe, probe_codes
from .rle import RUN_MAX, rle_collapse, rle_expand, run_stats, should_rle

__all__ = [
    "MAX_SYMBOLS",
    "PROB_BITS",
    "PROB_SCALE",
    "RANS_L",
    "RUN_MAX",
    "RansTable",
    "CodesProbe",
    "decode_tokens",
    "encode_tokens",
    "normalize_freqs",
    "pick_lanes",
    "probe_codes",
    "rle_collapse",
    "rle_expand",
    "run_stats",
    "should_rle",
]
