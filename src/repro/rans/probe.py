"""Cheap histogram probe: pick an entropy backend before coding anything.

``EntropyCodesStage(backend="auto")`` needs to choose between the
Huffman+gzip tail and the RLE+rANS tail *without* running either.  The
probe computes the one histogram both table builds need anyway, the run
statistics of the dominant symbol, and closed-form size estimates:

* Huffman: ``n * H(codes) / 8`` payload plus ~4 table bytes per symbol
  (the canonical-table serialization is 4 bytes per symbol plus small
  fixed parts; the gzip ride-along is ignored — it helps both sides).
* rANS: ``m * H(tokens) / 8`` payload plus 6 table bytes per symbol,
  one length byte per run token, and 4 state bytes per lane.

where ``m``/``H(tokens)`` reflect the RLE collapse when the activation
rule (:func:`repro.rans.rle.should_rle`) fires.  Entropy is a lower
bound for Huffman but (to table-quantization error) *tight* for rANS —
which is exactly the asymmetry that makes the estimate a fair referee.

The probe result is also the rANS encode plan: the entropy stage reuses
its histogram for the frequency table and its run decision for the
collapse, so ``auto`` costs one extra histogram only when it picks
Huffman.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..encoding.histogram import entropy_bits, symbol_histogram
from .coder import MAX_SYMBOLS, pick_lanes
from .rle import run_stats, should_rle

__all__ = ["CodesProbe", "probe_codes"]


@dataclass(frozen=True)
class CodesProbe:
    """Histogram, run plan and backend verdict for one code stream."""

    values: np.ndarray  # distinct symbols, increasing
    counts: np.ndarray  # matching occurrence counts
    run_symbol: int  # histogram argmax (quantizer radius in practice)
    use_rle: bool
    n_tokens: int  # stream length the rANS coder would see
    token_counts: np.ndarray  # counts after the (possible) collapse
    n_runs: int  # run tokens the collapse would emit
    rans_ok: bool  # alphabet fits the 4096-slot table
    est_huffman_bytes: float
    est_rans_bytes: float

    @property
    def pick(self) -> str:
        """The backend ``auto`` resolves to."""
        if not self.rans_ok:
            return "huffman"
        return "rans" if self.est_rans_bytes <= self.est_huffman_bytes else "huffman"


def probe_codes(codes: np.ndarray) -> CodesProbe:
    """Probe a flat code stream; cost is one histogram + one run scan."""
    codes = np.asarray(codes).reshape(-1)
    values, counts = symbol_histogram(codes)
    n = int(codes.size)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return CodesProbe(
            values=values, counts=counts, run_symbol=0, use_rle=False,
            n_tokens=0, token_counts=empty, n_runs=0, rans_ok=True,
            est_huffman_bytes=0.0, est_rans_bytes=0.0,
        )
    rans_ok = values.size <= MAX_SYMBOLS
    run_symbol = int(values[int(np.argmax(counts))])
    n_r, k = run_stats(codes, run_symbol)
    use_rle = should_rle(n, n_r, k)
    token_counts = counts.astype(np.int64, copy=True)
    if use_rle:
        token_counts[values == run_symbol] = k
    m = n - n_r + k if use_rle else n
    est_huffman = n * entropy_bits(counts) / 8.0 + 4.0 * values.size + 16.0
    est_rans = (
        m * entropy_bits(token_counts) / 8.0
        + 6.0 * values.size
        + (float(k) if use_rle else 0.0)
        + 4.0 * pick_lanes(m)
        + 16.0
    )
    return CodesProbe(
        values=values, counts=counts, run_symbol=run_symbol, use_rle=use_rle,
        n_tokens=m, token_counts=token_counts, n_runs=k, rans_ok=rans_ok,
        est_huffman_bytes=est_huffman, est_rans_bytes=est_rans,
    )
