"""Worker pool: where jobs actually execute.

Job functions live at module level so :class:`concurrent.futures.
ProcessPoolExecutor` can pickle them; a worker process resolves the codec
through the registry *inside* the child, so only small primitives (codec
name, bound, mode) and the field bytes cross the process boundary.

Three pool kinds:

``"process"``
    One OS process per worker — independent fields compress on all cores
    (the cuSZ-style coarse-grained batch axis).  The default.
``"thread"``
    Threads — no fork cost, still overlaps with the event loop; useful
    for serving small fields and on single-core machines.
``"inline"``
    ``max_workers=0``: run synchronously in the caller.  Deterministic
    and monkeypatch-friendly — the test mode.

All three run the *same* job functions, so results are byte-identical
across pool kinds and with the direct single-threaded library calls.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable

import numpy as np

from ..errors import ServiceError
from ..parallel import TiledResult, assemble_tiles, plan_bands
from ..types import CompressedField
from .jobs import CompressionJob

__all__ = [
    "run_job",
    "compress_band",
    "resolve_codec",
    "WorkerPool",
    "tile_compress_parallel",
]

#: Per-process codec instances, keyed by registry name.  Codecs are
#: stateless between ``compress``/``decompress`` calls (each call builds
#: its own pipeline), so one instance per worker process serves every job
#: for that codec — the registry lookup leaves the hot path.
_CODEC_CACHE: dict[str, Any] = {}


def resolve_codec(name: str) -> Any:
    """The process-local cached codec instance for a registry name."""
    codec = _CODEC_CACHE.get(name)
    if codec is None:
        from ..codec.registry import get_codec

        codec = _CODEC_CACHE[name] = get_codec(name)
    return codec


def _warm_worker() -> None:
    """Process-pool initializer: pay the import cost at fork, not on the
    first job.  The registry import pulls in numpy, the codec layer and
    the kernel dispatch tables — tens of milliseconds that would
    otherwise land on the first request each cold worker sees."""
    import repro.codec.registry  # noqa: F401
    import repro.streams  # noqa: F401


def run_job(job: CompressionJob) -> Any:
    """Execute one job in the current process (any pool kind).

    Returns a :class:`CompressedField` for compress jobs (a
    :class:`~repro.parallel.TiledResult` when ``n_tiles > 1``) and the
    restored ``np.ndarray`` for decompress jobs — the exact objects the
    direct library calls produce, which is what keeps the service
    bit-exact with the single-threaded path.  A multi-tile job landing
    here runs the *serial* band loop inside this one worker; the
    scheduler only routes past this function — to the band fan-out — for
    data-parallel codecs.
    """
    from ..streams import decompress_auto

    if job.op == "compress":
        assert job.data is not None
        if job.n_tiles > 1:
            from ..parallel import tile_compress

            return tile_compress(
                resolve_codec(job.codec), job.data, job.eb, job.mode,
                n_tiles=job.n_tiles,
            )
        return resolve_codec(job.codec).compress(job.data, job.eb, job.mode)
    assert job.payload is not None
    return decompress_auto(bytes(job.payload))


def compress_band(codec: str, band: np.ndarray, eb_abs: float) -> CompressedField:
    """Compress one tile band under an absolute bound (fan-out unit)."""
    return resolve_codec(codec).compress(band, eb_abs, "abs")


class WorkerPool:
    """A lazily started executor with an async door and an inline mode."""

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        kind: str = "process",
        executor: Executor | None = None,
    ) -> None:
        if executor is not None:
            self._executor: Executor | None = executor
            self._owned = False
            self.size = getattr(executor, "_max_workers", 1)
            self.kind = "external"
            self.restarts = 0
            return
        import os

        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ServiceError(f"max_workers must be >= 0, got {max_workers}")
        if kind not in ("process", "thread", "inline"):
            raise ServiceError(f"unknown pool kind {kind!r}")
        self.kind = "inline" if (max_workers == 0 or kind == "inline") else kind
        self.size = max(1, max_workers)
        self._executor = None
        self._owned = True
        self.restarts = 0  # times kill_hung() tore down the executor

    @property
    def executor(self) -> Executor | None:
        """The live executor, starting it on first use (None when inline)."""
        if self.kind == "inline":
            return None
        if self._executor is None:
            if self.kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.size, initializer=_warm_worker
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.size, thread_name_prefix="repro-worker"
                )
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Run ``fn(*args)`` on the pool; inline mode completes eagerly."""
        if self.kind == "inline":
            f: Future = Future()
            try:
                f.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                f.set_exception(exc)
            return f
        return self.executor.submit(fn, *args)

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Await ``fn(*args)`` on the pool from the event loop."""
        if self.kind == "inline":
            # Synchronous by design: unit tests want deterministic ordering.
            # Yield once so submissions already scheduled can interleave.
            await asyncio.sleep(0)
            return fn(*args)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self.executor, fn, *args)
        except BrokenExecutor:
            # A worker died hard (OOM kill, SIGKILL, segfault) and took
            # the executor down with it.  Respawn so the retry that this
            # *transient* error triggers lands on a healthy pool instead
            # of failing the same way instantly.
            if self._owned and self.kind == "process":
                broken, self._executor = self._executor, None
                self.restarts += 1
                if broken is not None:
                    broken.shutdown(wait=False, cancel_futures=True)
            raise

    def kill_hung(self) -> int:
        """Tear down the live executor so a hung worker cannot wedge the
        pool forever; the next :attr:`executor` access starts a fresh one.

        For a process pool the worker processes are terminated outright
        (a hung C loop never reaches a cooperative cancellation point);
        thread pools cannot kill threads, so the stuck thread is leaked
        and a replacement executor takes over — bounded by the watchdog's
        hang budget, not by luck.  Returns the number of restarts so far.
        External and inline pools are left alone (we do not own them).
        """
        if not self._owned or self.kind == "inline":
            return self.restarts
        executor = self._executor
        self._executor = None
        self.restarts += 1
        if executor is not None:
            if self.kind == "process":
                for proc in list(
                    getattr(executor, "_processes", {}).values()
                ):
                    try:
                        proc.terminate()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            executor.shutdown(wait=False, cancel_futures=True)
        return self.restarts

    def shutdown(self, *, wait: bool = True) -> None:
        """Tear the pool down; ``wait=False`` abandons stuck workers
        instead of blocking on them (used when a stop deadline blew)."""
        if self._owned and self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def tile_compress_parallel(
    codec: str,
    data: np.ndarray,
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    n_tiles: int = 4,
    pool: WorkerPool | None = None,
) -> TiledResult:
    """:func:`repro.parallel.tile_compress` with bands fanned across a pool.

    Bands are submitted together and gathered *in band order*, so the
    assembled container is byte-identical to the serial path regardless
    of completion order.  ``codec`` is a registry name (resolved inside
    each worker); ``pool=None`` uses a throwaway process pool.
    """
    data = np.ascontiguousarray(data)
    bound, slices = plan_bands(data, eb, mode, n_tiles)
    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(kind="process")
    try:
        futures = [
            pool.submit(
                compress_band,
                codec,
                np.ascontiguousarray(data[sl]),
                bound.absolute,
            )
            for sl in slices
        ]
        compressed = [f.result() for f in futures]
    finally:
        if own_pool:
            pool.shutdown()
    from ..codec.registry import REGISTRY

    return assemble_tiles(REGISTRY.canonical(codec), data, bound, slices, compressed)
