"""Bounded priority queue with explicit backpressure.

The service's cardinal rule is *no unbounded memory growth*: a field
awaiting compression pins its full uncompressed array, so the queue holds
at most ``maxsize`` jobs and a submission against a full queue either
fails fast (:class:`~repro.errors.QueueFullError`) or — via the awaitable
:meth:`BoundedJobQueue.put` — waits until a worker drains a slot.  Both
forms make backpressure observable to callers instead of hiding it in
swap.

Ordering is by descending :attr:`CompressionJob.priority`, FIFO within a
priority level (a monotonic sequence number breaks ties), matching the
coarse-grained batch scheduling cuSZ uses across independent fields.

Single event loop only: all coordination uses ``asyncio`` primitives, so
the queue must be produced into and consumed from the same loop.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools

from ..errors import QueueFullError, ServiceError
from .jobs import JobHandle

__all__ = ["BoundedJobQueue"]


class BoundedJobQueue:
    """An asyncio priority queue with a hard capacity and depth telemetry."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ServiceError(f"queue capacity must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, JobHandle]] = []
        self._seq = itertools.count()
        self._has_items = asyncio.Event()
        self._has_space = asyncio.Event()
        self._has_space.set()
        self._closed = False
        #: telemetry: deepest the queue has ever been, and submissions
        #: rejected by backpressure
        self.high_water = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.maxsize

    @property
    def closed(self) -> bool:
        return self._closed

    def _push(self, handle: JobHandle) -> None:
        heapq.heappush(
            self._heap, (-handle.job.priority, next(self._seq), handle)
        )
        self.high_water = max(self.high_water, len(self._heap))
        self._has_items.set()
        if self.full:
            self._has_space.clear()

    def put_nowait(self, handle: JobHandle) -> None:
        """Enqueue or reject immediately — the fail-fast backpressure path."""
        if self._closed:
            raise ServiceError("queue is closed")
        if self.full:
            self.rejections += 1
            raise QueueFullError(
                f"job queue full ({self.maxsize} jobs): submission "
                f"{handle.job.job_id!r} rejected; retry later or submit "
                "with block=True"
            )
        self._push(handle)

    async def put(self, handle: JobHandle) -> None:
        """Enqueue, waiting for space — the delay form of backpressure."""
        while self.full and not self._closed:
            self._has_space.clear()
            await self._has_space.wait()
        if self._closed:
            raise ServiceError("queue is closed")
        self._push(handle)

    async def get(self) -> JobHandle:
        """Dequeue the highest-priority job, waiting while empty.

        Raises :class:`ServiceError` once the queue is closed *and* empty,
        which is how dispatcher loops learn to exit.
        """
        while not self._heap:
            if self._closed:
                raise ServiceError("queue is closed")
            self._has_items.clear()
            await self._has_items.wait()
        _, _, handle = heapq.heappop(self._heap)
        if not self._heap:
            self._has_items.clear()
        self._has_space.set()
        return handle

    def peek(self) -> JobHandle | None:
        """The handle :meth:`get` would return next, without removing it.

        The micro-batcher's lookahead: a dispatcher that just pulled a
        small job peeks at the head to decide whether the next job can
        ride the same worker round-trip.
        """
        return self._heap[0][2] if self._heap else None

    def get_nowait(self) -> JobHandle | None:
        """Dequeue the head immediately, or ``None`` when empty.

        Safe to interleave with :meth:`get`: all consumers run on one
        event loop, so a peek-then-get_nowait pair is atomic between
        awaits — the batch collector relies on that.
        """
        if not self._heap:
            return None
        _, _, handle = heapq.heappop(self._heap)
        if not self._heap:
            self._has_items.clear()
        self._has_space.set()
        return handle

    def close(self) -> None:
        """Close the queue and wake every waiter (drain-then-stop)."""
        self._closed = True
        self._has_items.set()
        self._has_space.set()
