"""Asyncio batch scheduler: bounded intake, worker dispatch, retries.

The control plane of the service.  Jobs enter through :meth:`BatchScheduler.
submit` (fail-fast or blocking backpressure against the bounded queue),
dispatcher coroutines — one per worker slot — pull by priority and run
each job on the :class:`~repro.service.workers.WorkerPool`, and failures
retry with exponential backoff *only* when :func:`repro.faults.is_transient`
says retrying can help.  Every transition lands in the
:class:`~repro.service.metrics.MetricsRegistry`.

The synchronous convenience :func:`run_batch` wraps the whole lifecycle
(start → submit all → drain → stop) for CLI batch mode, benches and tests.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Sequence

import numpy as np

from ..codec.registry import REGISTRY
from ..errors import (
    DeadlineExpiredError,
    JobFailedError,
    QueueFullError,
    ServiceError,
    WorkerHungError,
)
from ..faults import is_transient
from ..parallel import TiledResult, assemble_tiles, plan_bands
from ..types import CompressedField
from .jobs import CompressionJob, JobHandle, JobResult, JobState
from .metrics import MetricsRegistry, ServiceStats
from .queue import BoundedJobQueue
from .workers import WorkerPool, compress_band, run_job

__all__ = ["BatchScheduler", "run_batch"]


class BatchScheduler:
    """Accepts jobs, schedules them over a worker pool, tracks outcomes."""

    def __init__(
        self,
        *,
        pool: WorkerPool | None = None,
        workers: int | None = None,
        pool_kind: str = "process",
        queue_size: int = 128,
        max_retries: int = 2,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 1.0,
        hang_timeout_s: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.pool = pool if pool is not None else WorkerPool(
            workers, kind=pool_kind
        )
        self.queue = BoundedJobQueue(queue_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hang_timeout_s = hang_timeout_s
        self._dispatchers: list[asyncio.Task] = []
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # Seam for tests and alternative work kinds: the function a worker
        # runs.  Must stay module-level-picklable for process pools.
        self._worker_fn: Callable[[CompressionJob], object] = run_job

    # -- intake ----------------------------------------------------------

    async def submit(
        self, job: CompressionJob, *, block: bool = False
    ) -> JobHandle:
        """Submit one job; returns its handle.

        ``block=False`` applies fail-fast backpressure: a full queue
        raises :class:`QueueFullError` (and counts a rejection).
        ``block=True`` waits for a slot instead — backpressure as delay.
        """
        handle = JobHandle(job)
        handle._done = asyncio.Event()
        self.metrics.count(job.metrics_key, "submitted")
        try:
            if block:
                await self.queue.put(handle)
            else:
                self.queue.put_nowait(handle)
        except QueueFullError:
            handle.finish(JobState.REJECTED)
            self.metrics.count(job.metrics_key, "rejected")
            raise
        handle.state = JobState.QUEUED
        self._idle.clear()
        return handle

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn one dispatcher per worker slot on the running loop."""
        if self._dispatchers:
            return
        self._dispatchers = [
            asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name=f"repro-dispatch-{i}"
            )
            for i in range(self.pool.size)
        ]

    async def stop(self, *, deadline_s: float | None = None) -> None:
        """Graceful shutdown: close intake, drain in-flight, bounded.

        Queued and running jobs finish normally (their callers get real
        results) — intake is closed so nothing new enters.  With a
        ``deadline_s``, dispatchers that have not exited by then are
        cancelled and any job caught mid-run fails with a
        :class:`JobFailedError` so no waiter hangs forever.
        """
        self.queue.close()
        abandoned = False
        pending = [t for t in self._dispatchers if not t.done()]
        if pending:
            _, not_done = await asyncio.wait(pending, timeout=deadline_s)
            abandoned = bool(not_done)
            for t in not_done:
                t.cancel()
            for t in not_done:
                try:
                    await t
                except asyncio.CancelledError:
                    pass
        self._dispatchers = []
        # a blown deadline means some worker is stuck mid-job; joining it
        # would re-introduce the unbounded wait the deadline exists to cap
        self.pool.shutdown(wait=not abandoned)

    async def drain(self) -> None:
        """Wait until the queue is empty and no job is in flight."""
        while self.queue.depth or self._in_flight:
            self._idle.clear()
            await self._idle.wait()

    async def __aenter__(self) -> "BatchScheduler":
        self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.drain()
        await self.stop()

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            try:
                handle = await self.queue.get()
            except ServiceError:
                return  # queue closed and drained
            self._in_flight += 1
            try:
                await self._run_one(handle)
            except asyncio.CancelledError:
                # shutdown deadline expired mid-run: fail the handle so
                # its waiter is released, then let the cancellation win.
                if handle.result is None and handle.error is None:
                    handle.finish(
                        JobState.FAILED,
                        error=JobFailedError(
                            f"job {handle.job.job_id!r} cancelled at "
                            "shutdown deadline"
                        ),
                    )
                    self.metrics.count(handle.job.metrics_key, "failed")
                raise
            finally:
                self._in_flight -= 1
                if not self._in_flight and not self.queue.depth:
                    self._idle.set()

    async def _run_one(self, handle: JobHandle) -> None:
        job = handle.job
        key = job.metrics_key
        if handle.expired:
            handle.finish(
                JobState.EXPIRED,
                error=DeadlineExpiredError(
                    f"job {job.job_id!r} missed its {job.deadline_s:g}s "
                    "deadline while queued"
                ),
            )
            self.metrics.count(key, "expired")
            return

        handle.state = JobState.RUNNING
        handle.started_at = time.monotonic()
        attempts = self.max_retries + 1
        for attempt in range(1, attempts + 1):
            handle.attempts = attempt
            t0 = time.monotonic()
            try:
                output = await self._run_worker(job)
            except Exception as exc:  # noqa: BLE001 - classified below
                if is_transient(exc) and attempt < attempts:
                    self.metrics.count(key, "retried")
                    delay = min(
                        self.backoff_cap_s,
                        self.backoff_base_s * (2 ** (attempt - 1)),
                    )
                    await asyncio.sleep(delay)
                    continue
                handle.finish(
                    JobState.FAILED,
                    error=JobFailedError(
                        f"job {job.job_id!r} ({job.op} {job.codec}) failed "
                        f"after {attempt} attempt(s): "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
                handle.error.__cause__ = exc
                self.metrics.count(key, "failed")
                return
            now = time.monotonic()
            result = self._to_result(handle, output, run_s=now - t0)
            handle.finish(JobState.DONE, result=result)
            self.metrics.observe_completion(
                key,
                latency_s=result.total_s,
                bytes_in=job.input_bytes,
                bytes_out=(
                    len(result.output)
                    if isinstance(result.output, (bytes, bytearray))
                    else 0
                ),
            )
            return

    def _wants_fanout(self, job: CompressionJob) -> bool:
        """Multi-tile compress jobs of data-parallel codecs fan out.

        Classic wavefront codecs still tile, but serially inside one
        worker (:func:`run_job`): their per-band sweeps hog a core each,
        so spreading one job's bands buys nothing a second *job* would
        not use better.  Dual-quant codecs have no wavefront — their
        bands are the intra-job parallel axis the registry flag
        advertises.  The test seam (`_worker_fn`) opts out of routing so
        substituted work functions always see the whole job.
        """
        return (
            job.op == "compress"
            and job.n_tiles > 1
            and self._worker_fn is run_job
            and REGISTRY.entry(job.codec).data_parallel
        )

    async def _run_worker(self, job: CompressionJob) -> object:
        """One pool execution under the watchdog's hang budget.

        With ``hang_timeout_s`` set, a worker that does not come back in
        time is killed (:meth:`WorkerPool.kill_hung` respawns the
        executor) and the attempt fails with :class:`WorkerHungError` —
        a *transient* error, so the normal retry loop gets the next
        attempt on a fresh worker.
        """
        if self._wants_fanout(job):
            work = self._run_tiled(job)
        else:
            work = self.pool.run(self._worker_fn, job)
        if self.hang_timeout_s is None:
            return await work
        try:
            return await asyncio.wait_for(work, self.hang_timeout_s)
        except asyncio.TimeoutError:
            self.pool.kill_hung()
            self.metrics.incr("watchdog.kills")
            raise WorkerHungError(
                f"job {job.job_id!r} exceeded the {self.hang_timeout_s:g}s "
                "hang budget; worker killed and pool respawned"
            ) from None

    async def _run_tiled(self, job: CompressionJob) -> TiledResult:
        """Fan one dp job's tile bands across the pool (satellite wiring).

        Same plan (:func:`plan_bands`), same band unit
        (:func:`compress_band`), same deterministic assembly
        (:func:`assemble_tiles`) as the serial path and
        :func:`~repro.service.workers.tile_compress_parallel` — gathered
        in band order, so the payload is byte-identical to a single
        worker running :func:`run_job` on the same job.
        """
        assert job.data is not None
        bound, slices = plan_bands(job.data, job.eb, job.mode, job.n_tiles)
        compressed = await asyncio.gather(*(
            self.pool.run(
                compress_band,
                job.codec,
                np.ascontiguousarray(job.data[sl]),
                bound.absolute,
            )
            for sl in slices
        ))
        self.metrics.incr("scheduler.tile_fanouts")
        return assemble_tiles(
            REGISTRY.canonical(job.codec), job.data, bound, slices, compressed
        )

    def _to_result(
        self, handle: JobHandle, output: object, *, run_s: float
    ) -> JobResult:
        job = handle.job
        stats = None
        if isinstance(output, (CompressedField, TiledResult)):
            stats = output.stats
            payload: object = output.payload
        else:
            payload = output
        now = time.monotonic()
        started = handle.started_at or now
        return JobResult(
            job_id=job.job_id,
            codec=job.codec,
            op=job.op,
            output=payload,
            stats=stats,
            attempts=handle.attempts,
            queued_s=started - handle.submitted_at,
            run_s=run_s,
            total_s=now - handle.submitted_at,
        )

    # -- observation -----------------------------------------------------

    async def wait(self, handle: JobHandle) -> JobResult:
        """Await a handle's terminal state; raise its error on failure."""
        assert handle._done is not None, "handle was not submitted"
        await handle._done.wait()
        if handle.result is not None:
            return handle.result
        assert handle.error is not None
        raise handle.error

    def stats(self) -> ServiceStats:
        return self.metrics.snapshot(
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.maxsize,
            queue_high_water=self.queue.high_water,
            in_flight=self._in_flight,
            workers=self.pool.size,
        )


def run_batch(
    jobs: Sequence[CompressionJob],
    *,
    workers: int | None = None,
    pool_kind: str = "process",
    pool: WorkerPool | None = None,
    queue_size: int = 128,
    max_retries: int = 2,
    block: bool = True,
    scheduler_kwargs: dict | None = None,
) -> tuple[list[JobResult | None], ServiceStats]:
    """Run a batch end-to-end and return (results, final stats).

    Results align with ``jobs`` by position; a failed/expired job yields
    ``None`` in its slot (its error is recorded on the stats counters).
    ``block=True`` submits with waiting backpressure so any batch size
    flows through the bounded queue.
    """

    async def _main() -> tuple[list[JobResult | None], ServiceStats]:
        sched = BatchScheduler(
            pool=pool,
            workers=workers,
            pool_kind=pool_kind,
            queue_size=queue_size,
            max_retries=max_retries,
            **(scheduler_kwargs or {}),
        )
        results: list[JobResult | None] = [None] * len(jobs)
        async with sched:
            handles = []
            for job in jobs:
                handles.append(await sched.submit(job, block=block))
            for i, h in enumerate(handles):
                try:
                    results[i] = await sched.wait(h)
                except ServiceError:
                    results[i] = None
            stats = sched.stats()
        return results, stats

    return asyncio.run(_main())
