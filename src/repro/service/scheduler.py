"""Asyncio batch scheduler: bounded intake, worker dispatch, retries.

The control plane of the service.  Jobs enter through :meth:`BatchScheduler.
submit` (fail-fast or blocking backpressure against the bounded queue),
dispatcher coroutines — one per worker slot — pull by priority and run
each job on the :class:`~repro.service.workers.WorkerPool`, and failures
retry with exponential backoff *only* when :func:`repro.faults.is_transient`
says retrying can help.  Every transition lands in the
:class:`~repro.service.metrics.MetricsRegistry`.

The synchronous convenience :func:`run_batch` wraps the whole lifecycle
(start → submit all → drain → stop) for CLI batch mode, benches and tests.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Sequence

from ..codec.registry import REGISTRY
from ..errors import (
    DeadlineExpiredError,
    JobFailedError,
    QueueFullError,
    ServiceError,
    WorkerHungError,
)
from ..faults import is_transient
from ..parallel import TiledResult, assemble_tiles, plan_bands
from ..types import CompressedField
from .jobs import CompressionJob, JobHandle, JobResult, JobState
from .metrics import MetricsRegistry, ServiceStats
from .queue import BoundedJobQueue
from .shm import resolve_transport
from .workers import WorkerPool, run_job

__all__ = ["BatchScheduler", "run_batch"]


class BatchScheduler:
    """Accepts jobs, schedules them over a worker pool, tracks outcomes."""

    def __init__(
        self,
        *,
        pool: WorkerPool | None = None,
        workers: int | None = None,
        pool_kind: str = "process",
        queue_size: int = 128,
        max_retries: int = 2,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 1.0,
        hang_timeout_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        transport: str = "auto",
        batch_bytes: int = 0,
        batch_wait_s: float = 0.002,
        batch_max_jobs: int = 16,
    ) -> None:
        self.pool = pool if pool is not None else WorkerPool(
            workers, kind=pool_kind
        )
        self.queue = BoundedJobQueue(queue_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hang_timeout_s = hang_timeout_s
        #: How fields cross the pool boundary.  ``"auto"`` resolves to
        #: shared memory for process pools (zero-copy `FieldRef`s) and
        #: pickle for thread/inline pools (same address space already).
        self.transport = resolve_transport(
            transport, self.pool.kind, metrics=self.metrics
        )
        #: Micro-batching: jobs smaller than ``batch_bytes`` coalesce
        #: into one worker dispatch (at most ``batch_max_jobs``, waiting
        #: at most ``batch_wait_s`` for company), so tiny fields stop
        #: paying a full pool round-trip each.  ``0`` disables batching.
        self.batch_bytes = batch_bytes
        self.batch_wait_s = batch_wait_s
        self.batch_max_jobs = max(1, batch_max_jobs)
        self._batch_dispatches = 0
        self._batch_jobs = 0
        self._dispatchers: list[asyncio.Task] = []
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # Seam for tests and alternative work kinds: the function a worker
        # runs.  Must stay module-level-picklable for process pools.
        # When substituted, dispatch bypasses the transport *and* the
        # micro-batcher so the substituted function sees whole jobs.
        self._worker_fn: Callable[[CompressionJob], object] = run_job

    # -- intake ----------------------------------------------------------

    async def submit(
        self, job: CompressionJob, *, block: bool = False
    ) -> JobHandle:
        """Submit one job; returns its handle.

        ``block=False`` applies fail-fast backpressure: a full queue
        raises :class:`QueueFullError` (and counts a rejection).
        ``block=True`` waits for a slot instead — backpressure as delay.
        """
        handle = JobHandle(job)
        handle._done = asyncio.Event()
        self.metrics.count(job.metrics_key, "submitted")
        try:
            if block:
                await self.queue.put(handle)
            else:
                self.queue.put_nowait(handle)
        except QueueFullError:
            handle.finish(JobState.REJECTED)
            self.metrics.count(job.metrics_key, "rejected")
            raise
        handle.state = JobState.QUEUED
        self._idle.clear()
        return handle

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn one dispatcher per worker slot on the running loop."""
        if self._dispatchers:
            return
        self._dispatchers = [
            asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name=f"repro-dispatch-{i}"
            )
            for i in range(self.pool.size)
        ]

    async def stop(self, *, deadline_s: float | None = None) -> None:
        """Graceful shutdown: close intake, drain in-flight, bounded.

        Queued and running jobs finish normally (their callers get real
        results) — intake is closed so nothing new enters.  With a
        ``deadline_s``, dispatchers that have not exited by then are
        cancelled and any job caught mid-run fails with a
        :class:`JobFailedError` so no waiter hangs forever.
        """
        self.queue.close()
        abandoned = False
        pending = [t for t in self._dispatchers if not t.done()]
        if pending:
            _, not_done = await asyncio.wait(pending, timeout=deadline_s)
            abandoned = bool(not_done)
            for t in not_done:
                t.cancel()
            for t in not_done:
                try:
                    await t
                except asyncio.CancelledError:
                    pass
        self._dispatchers = []
        # a blown deadline means some worker is stuck mid-job; joining it
        # would re-introduce the unbounded wait the deadline exists to cap
        self.pool.shutdown(wait=not abandoned)
        # after the pool is down no worker can hold a segment: unlink
        # everything, reclaiming leases a killed worker left behind
        self.transport.close()

    async def drain(self) -> None:
        """Wait until the queue is empty and no job is in flight."""
        while self.queue.depth or self._in_flight:
            self._idle.clear()
            await self._idle.wait()

    async def __aenter__(self) -> "BatchScheduler":
        self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.drain()
        await self.stop()

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            try:
                handle = await self.queue.get()
            except ServiceError:
                return  # queue closed and drained
            self._in_flight += 1
            group = [handle]
            try:
                if self._batchable(handle.job):
                    group = await self._collect_group(handle)
                if len(group) == 1:
                    await self._run_one(handle)
                else:
                    await self._run_group(group)
            except asyncio.CancelledError:
                # shutdown deadline expired mid-run: fail the handles so
                # their waiters are released, then let the cancellation
                # win.
                for h in group:
                    if h.result is None and h.error is None:
                        h.finish(
                            JobState.FAILED,
                            error=JobFailedError(
                                f"job {h.job.job_id!r} cancelled at "
                                "shutdown deadline"
                            ),
                        )
                        self.metrics.count(h.job.metrics_key, "failed")
                raise
            finally:
                self._in_flight -= len(group)
                if not self._in_flight and not self.queue.depth:
                    self._idle.set()

    def _batchable(self, job: CompressionJob) -> bool:
        """Whether a job may join a coalesced dispatch."""
        return (
            self.batch_bytes > 0
            and self._worker_fn is run_job
            and job.batch_eligible
            and job.input_bytes < self.batch_bytes
        )

    async def _collect_group(self, first: JobHandle) -> list[JobHandle]:
        """Greedily coalesce small jobs behind ``first``.

        Drains every immediately-available batchable job (peek +
        ``get_nowait`` is atomic between awaits — one event loop), then
        waits at most ``batch_wait_s`` once for company before giving
        up, so a lone small job's latency is bounded by design, not by
        arrival luck.  A non-batchable head stops collection and stays
        queued for another dispatcher.
        """
        group = [first]
        waited = False
        while len(group) < self.batch_max_jobs:
            nxt = self.queue.peek()
            if nxt is not None:
                if not self._batchable(nxt.job):
                    break
                self.queue.get_nowait()
                self._in_flight += 1
                group.append(nxt)
                continue
            if waited or self.batch_wait_s <= 0 or self.queue.closed:
                break
            waited = True
            await asyncio.sleep(self.batch_wait_s)
        return group

    async def _run_group(self, group: list[JobHandle]) -> None:
        """One coalesced dispatch: N small jobs, one pool round-trip.

        The whole group runs as a single worker call (the transport
        packs shm-bound inputs into one segment).  Any group-level
        failure falls back to dispatching each member individually
        through :meth:`_run_one` — every job keeps its full retry
        budget, so batching can never *reduce* a job's chances.
        """
        live: list[JobHandle] = []
        for h in group:
            if h.expired:
                h.finish(
                    JobState.EXPIRED,
                    error=DeadlineExpiredError(
                        f"job {h.job.job_id!r} missed its "
                        f"{h.job.deadline_s:g}s deadline while queued"
                    ),
                )
                self.metrics.count(h.job.metrics_key, "expired")
                continue
            h.state = JobState.RUNNING
            h.started_at = time.monotonic()
            h.attempts = 1
            live.append(h)
        if not live:
            return
        envelope = self.transport.encode_group([h.job for h in live])
        t0 = time.monotonic()
        try:
            outputs = await self._guard_hang(
                self.pool.run(envelope.fn, *envelope.args),
                f"batch of {len(live)} jobs",
            )
            if not isinstance(outputs, list) or len(outputs) != len(live):
                raise ServiceError(
                    f"batched dispatch returned {type(outputs).__name__} "
                    f"for {len(live)} jobs"
                )
        except Exception:  # noqa: BLE001 - group fails over to singles
            self.metrics.incr("batch.fallbacks")
            for h in live:
                h.state = JobState.QUEUED
                await self._run_one(h)
            return
        finally:
            envelope.release()
        run_s = time.monotonic() - t0
        self._batch_dispatches += 1
        self._batch_jobs += len(live)
        self.metrics.incr("batch.dispatches")
        self.metrics.incr("batch.jobs", len(live))
        self.metrics.set_gauge(
            "batch.occupancy", self._batch_jobs / self._batch_dispatches
        )
        for h, output in zip(live, outputs):
            result = self._to_result(h, output, run_s=run_s)
            h.finish(JobState.DONE, result=result)
            self.metrics.observe_completion(
                h.job.metrics_key,
                latency_s=result.total_s,
                bytes_in=h.job.input_bytes,
                bytes_out=(
                    len(result.output)
                    if isinstance(result.output, (bytes, bytearray))
                    else 0
                ),
            )

    async def _run_one(self, handle: JobHandle) -> None:
        job = handle.job
        key = job.metrics_key
        if handle.expired:
            handle.finish(
                JobState.EXPIRED,
                error=DeadlineExpiredError(
                    f"job {job.job_id!r} missed its {job.deadline_s:g}s "
                    "deadline while queued"
                ),
            )
            self.metrics.count(key, "expired")
            return

        handle.state = JobState.RUNNING
        handle.started_at = time.monotonic()
        attempts = self.max_retries + 1
        for attempt in range(1, attempts + 1):
            handle.attempts = attempt
            t0 = time.monotonic()
            try:
                output = await self._run_worker(job)
            except Exception as exc:  # noqa: BLE001 - classified below
                if is_transient(exc) and attempt < attempts:
                    self.metrics.count(key, "retried")
                    delay = min(
                        self.backoff_cap_s,
                        self.backoff_base_s * (2 ** (attempt - 1)),
                    )
                    await asyncio.sleep(delay)
                    continue
                handle.finish(
                    JobState.FAILED,
                    error=JobFailedError(
                        f"job {job.job_id!r} ({job.op} {job.codec}) failed "
                        f"after {attempt} attempt(s): "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
                handle.error.__cause__ = exc
                self.metrics.count(key, "failed")
                return
            now = time.monotonic()
            result = self._to_result(handle, output, run_s=now - t0)
            handle.finish(JobState.DONE, result=result)
            self.metrics.observe_completion(
                key,
                latency_s=result.total_s,
                bytes_in=job.input_bytes,
                bytes_out=(
                    len(result.output)
                    if isinstance(result.output, (bytes, bytearray))
                    else 0
                ),
            )
            return

    def _wants_fanout(self, job: CompressionJob) -> bool:
        """Multi-tile compress jobs of data-parallel codecs fan out.

        Classic wavefront codecs still tile, but serially inside one
        worker (:func:`run_job`): their per-band sweeps hog a core each,
        so spreading one job's bands buys nothing a second *job* would
        not use better.  Dual-quant codecs have no wavefront — their
        bands are the intra-job parallel axis the registry flag
        advertises.  The test seam (`_worker_fn`) opts out of routing so
        substituted work functions always see the whole job.
        """
        return (
            job.op == "compress"
            and job.n_tiles > 1
            and self._worker_fn is run_job
            and REGISTRY.entry(job.codec).data_parallel
        )

    async def _run_worker(self, job: CompressionJob) -> object:
        """One pool execution under the watchdog's hang budget.

        With ``hang_timeout_s`` set, a worker that does not come back in
        time is killed (:meth:`WorkerPool.kill_hung` respawns the
        executor) and the attempt fails with :class:`WorkerHungError` —
        a *transient* error, so the normal retry loop gets the next
        attempt on a fresh worker.
        """
        if self._wants_fanout(job):
            work = self._run_tiled(job)
        elif self._worker_fn is run_job:
            work = self._run_via_transport(job)
        else:
            work = self.pool.run(self._worker_fn, job)
        return await self._guard_hang(work, f"job {job.job_id!r}")

    async def _guard_hang(self, work, label: str) -> object:
        """Await pool work under the watchdog's hang budget."""
        if self.hang_timeout_s is None:
            return await work
        try:
            return await asyncio.wait_for(work, self.hang_timeout_s)
        except asyncio.TimeoutError:
            self.pool.kill_hung()
            self.metrics.incr("watchdog.kills")
            raise WorkerHungError(
                f"{label} exceeded the {self.hang_timeout_s:g}s "
                "hang budget; worker killed and pool respawned"
            ) from None

    async def _run_via_transport(self, job: CompressionJob) -> object:
        """One pool execution with the field crossing by the transport's
        channel (a `FieldRef` under shm, the job itself under pickle).

        The input lease is released in ``finally`` — parent-owned, so a
        worker SIGKILLed mid-job cannot leak the input segment — and
        large worker-shipped outputs are reattached (and their one-shot
        segments unlinked) in ``decode_result``.
        """
        envelope = self.transport.encode_job(job)
        try:
            output = await self.pool.run(envelope.fn, *envelope.args)
        finally:
            envelope.release()
        return self.transport.decode_result(output)

    async def _run_tiled(self, job: CompressionJob) -> TiledResult:
        """Fan one dp job's tile bands across the pool (satellite wiring).

        Same plan (:func:`plan_bands`), same band unit
        (:func:`compress_band`), same deterministic assembly
        (:func:`assemble_tiles`) as the serial path and
        :func:`~repro.service.workers.tile_compress_parallel` — gathered
        in band order, so the payload is byte-identical to a single
        worker running :func:`run_job` on the same job.
        """
        assert job.data is not None
        bound, slices = plan_bands(job.data, job.eb, job.mode, job.n_tiles)
        envelopes = [
            self.transport.encode_band(job, job.data[sl], bound.absolute)
            for sl in slices
        ]
        try:
            compressed = await asyncio.gather(*(
                self.pool.run(env.fn, *env.args) for env in envelopes
            ))
        finally:
            for env in envelopes:
                env.release()
        self.metrics.incr("scheduler.tile_fanouts")
        return assemble_tiles(
            REGISTRY.canonical(job.codec), job.data, bound, slices, compressed
        )

    def _to_result(
        self, handle: JobHandle, output: object, *, run_s: float
    ) -> JobResult:
        job = handle.job
        stats = None
        if isinstance(output, (CompressedField, TiledResult)):
            stats = output.stats
            payload: object = output.payload
        else:
            payload = output
        now = time.monotonic()
        started = handle.started_at or now
        return JobResult(
            job_id=job.job_id,
            codec=job.codec,
            op=job.op,
            output=payload,
            stats=stats,
            attempts=handle.attempts,
            queued_s=started - handle.submitted_at,
            run_s=run_s,
            total_s=now - handle.submitted_at,
        )

    # -- observation -----------------------------------------------------

    async def wait(self, handle: JobHandle) -> JobResult:
        """Await a handle's terminal state; raise its error on failure."""
        assert handle._done is not None, "handle was not submitted"
        await handle._done.wait()
        if handle.result is not None:
            return handle.result
        assert handle.error is not None
        raise handle.error

    def stats(self) -> ServiceStats:
        return self.metrics.snapshot(
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.maxsize,
            queue_high_water=self.queue.high_water,
            in_flight=self._in_flight,
            workers=self.pool.size,
        )


def run_batch(
    jobs: Sequence[CompressionJob],
    *,
    workers: int | None = None,
    pool_kind: str = "process",
    pool: WorkerPool | None = None,
    queue_size: int = 128,
    max_retries: int = 2,
    block: bool = True,
    transport: str = "auto",
    batch_bytes: int = 0,
    scheduler_kwargs: dict | None = None,
) -> tuple[list[JobResult | None], ServiceStats]:
    """Run a batch end-to-end and return (results, final stats).

    Results align with ``jobs`` by position; a failed/expired job yields
    ``None`` in its slot (its error is recorded on the stats counters).
    ``block=True`` submits with waiting backpressure so any batch size
    flows through the bounded queue.  ``transport``/``batch_bytes``
    forward to :class:`BatchScheduler` (shared-memory field transport
    and the micro-batch coalescing threshold).
    """

    async def _main() -> tuple[list[JobResult | None], ServiceStats]:
        sched = BatchScheduler(
            pool=pool,
            workers=workers,
            pool_kind=pool_kind,
            queue_size=queue_size,
            max_retries=max_retries,
            transport=transport,
            batch_bytes=batch_bytes,
            **(scheduler_kwargs or {}),
        )
        results: list[JobResult | None] = [None] * len(jobs)
        async with sched:
            handles = []
            for job in jobs:
                handles.append(await sched.submit(job, block=block))
            for i, h in enumerate(handles):
                try:
                    results[i] = await sched.wait(h)
                except ServiceError:
                    results[i] = None
            stats = sched.stats()
        return results, stats

    return asyncio.run(_main())
