"""Live service metrics: per-codec counters, latency histograms, snapshots.

Everything here is plain in-process bookkeeping — cheap enough to update
on every job event — exposed through an immutable :class:`ServiceStats`
snapshot so observers (the ``stats`` server op, the CLI, tests, benches)
never see a half-updated view.  A :class:`threading.Lock` guards updates
because the TCP server may snapshot from a different thread than the
scheduler loop mutating the counters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["LatencySummary", "ServiceStats", "MetricsRegistry"]

#: Per-codec raw latency samples kept for percentile estimation.  A
#: bounded reservoir: old samples age out, which is what a *live* p99
#: should do anyway.
_RESERVOIR = 4096

_COUNTER_KEYS = (
    "submitted", "completed", "failed", "retried", "rejected", "expired",
)


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles over the retained latency samples, in seconds.

    An empty sample set yields ``count == 0`` with every statistic
    ``None`` — not zeros, which read as "instant", and not an exception,
    so a series (e.g. a store cache gauge set) can register with the
    registry before its first traffic and still snapshot cleanly.
    """

    count: int
    mean_s: float | None
    p50_s: float | None
    p90_s: float | None
    p99_s: float | None
    max_s: float | None

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, None, None, None, None, None)
        s = sorted(samples)

        def pct(p: float) -> float:
            return s[min(len(s) - 1, int(p * len(s)))]

        return LatencySummary(
            count=len(s),
            mean_s=sum(s) / len(s),
            p50_s=pct(0.50),
            p90_s=pct(0.90),
            p99_s=pct(0.99),
            max_s=s[-1],
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p90_s": self.p90_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the whole service.

    ``jobs`` maps codec name → counter dict (submitted / completed /
    failed / retried / rejected / expired); ``latency`` maps codec name →
    :class:`LatencySummary` plus an ``"overall"`` entry.  ``ratio`` is the
    aggregate compression ratio over all completed compress jobs.
    """

    uptime_s: float
    jobs: Mapping[str, Mapping[str, int]]
    totals: Mapping[str, int]
    queue_depth: int
    queue_capacity: int
    queue_high_water: int
    in_flight: int
    workers: int
    latency: Mapping[str, LatencySummary]
    throughput_jobs_per_s: float
    bytes_in: int
    bytes_out: int
    ratio: float = field(default=0.0)
    gauges: Mapping[str, float] = field(default_factory=dict)
    events: Mapping[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (the wire format of the ``stats`` op)."""
        return {
            "uptime_s": self.uptime_s,
            "jobs": {k: dict(v) for k, v in self.jobs.items()},
            "totals": dict(self.totals),
            "queue": {
                "depth": self.queue_depth,
                "capacity": self.queue_capacity,
                "high_water": self.queue_high_water,
            },
            "in_flight": self.in_flight,
            "workers": self.workers,
            "latency": {k: v.to_dict() for k, v in self.latency.items()},
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "ratio": self.ratio,
            "gauges": dict(self.gauges),
            "events": dict(self.events),
        }


class MetricsRegistry:
    """Mutable counters + histograms behind a lock; snapshot() freezes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._counters: dict[str, dict[str, int]] = {}
        self._latency: dict[str, deque[float]] = {}
        self._bytes_in = 0
        self._bytes_out = 0
        self._gauges: dict[str, float] = {}
        self._events: dict[str, int] = {}
        self._first_completion: float | None = None
        self._last_completion: float | None = None

    def _codec(self, codec: str) -> dict[str, int]:
        return self._counters.setdefault(
            codec, {k: 0 for k in _COUNTER_KEYS}
        )

    def count(self, codec: str, event: str, n: int = 1) -> None:
        """Bump one per-codec counter (event ∈ ``_COUNTER_KEYS``)."""
        with self._lock:
            self._codec(codec)[event] += n

    def incr(self, name: str, n: int = 1) -> None:
        """Bump a free-form monotonic event counter.

        The resilience plane lives here: ``client.retries``,
        ``server.idem_hits``, ``watchdog.kills``, ``store.rollbacks``,
        ``store.fsck_repairs`` — anything that is a count of things that
        happened rather than a per-codec job transition.  The transport
        plane adds ``batch.dispatches`` / ``batch.jobs`` /
        ``batch.fallbacks`` (micro-batching) and ``shm.leaks_reclaimed``
        (segments the arena had to reclaim after a worker died holding a
        lease).  Appears in every snapshot under ``events`` from the
        first bump.
        """
        with self._lock:
            self._events[name] = self._events.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (cache residency, queue depth, ...).

        Gauges are last-write-wins and appear in every snapshot from the
        moment they are first set — a producer (e.g. the store's tile
        cache) registers its series at construction by setting them to 0.
        The transport plane publishes ``shm.resident_bytes`` (bytes the
        arena currently maps) and ``batch.occupancy`` (mean jobs per
        coalesced dispatch, a rolling view of how full batches run).
        """
        with self._lock:
            self._gauges[name] = float(value)

    def set_gauges(self, values: Mapping[str, float]) -> None:
        """Set several gauges under one lock acquisition."""
        with self._lock:
            for name, value in values.items():
                self._gauges[name] = float(value)

    def observe_completion(
        self, codec: str, *, latency_s: float,
        bytes_in: int = 0, bytes_out: int = 0,
    ) -> None:
        """Record a successful job: latency sample + throughput window."""
        now = time.monotonic()
        with self._lock:
            self._codec(codec)["completed"] += 1
            self._latency.setdefault(codec, deque(maxlen=_RESERVOIR)).append(
                latency_s
            )
            self._bytes_in += bytes_in
            self._bytes_out += bytes_out
            if self._first_completion is None:
                self._first_completion = now
            self._last_completion = now

    def snapshot(
        self, *, queue_depth: int = 0, queue_capacity: int = 0,
        queue_high_water: int = 0, in_flight: int = 0, workers: int = 0,
    ) -> ServiceStats:
        """Freeze a consistent :class:`ServiceStats` view."""
        with self._lock:
            jobs = {k: dict(v) for k, v in self._counters.items()}
            latency = {
                k: LatencySummary.of(list(v)) for k, v in self._latency.items()
            }
            all_samples = [x for v in self._latency.values() for x in v]
            latency["overall"] = LatencySummary.of(all_samples)
            totals = {k: 0 for k in _COUNTER_KEYS}
            for v in jobs.values():
                for k in _COUNTER_KEYS:
                    totals[k] += v[k]
            span = (
                (self._last_completion or 0.0)
                - (self._first_completion or 0.0)
            )
            completed = totals["completed"]
            if completed > 1 and span > 0:
                throughput = completed / span
            elif completed:
                throughput = float(completed)
            else:
                throughput = 0.0
            return ServiceStats(
                uptime_s=time.monotonic() - self._started,
                jobs=jobs,
                totals=totals,
                queue_depth=queue_depth,
                queue_capacity=queue_capacity,
                queue_high_water=queue_high_water,
                in_flight=in_flight,
                workers=workers,
                latency=latency,
                throughput_jobs_per_s=throughput,
                bytes_in=self._bytes_in,
                bytes_out=self._bytes_out,
                ratio=(
                    self._bytes_in / self._bytes_out if self._bytes_out else 0.0
                ),
                gauges=dict(self._gauges),
                events=dict(self._events),
            )
