"""Client-side resilience primitives: retry policy and circuit breaker.

Both are deliberately tiny, deterministic state machines — no threads, no
wall-clock reads of their own — so the chaos harness can drive them with
a seeded RNG and an injectable clock and assert exact transitions.

:class:`RetryPolicy` owns the *when to try again* decision: exponential
backoff with full jitter (the AWS-style ``random() * min(cap, base*2^k)``
schedule, which de-synchronises a thundering herd better than equal
jitter) drawn from a seeded :class:`random.Random`.

:class:`CircuitBreaker` owns the *whether to try at all* decision, the
classic three states:

* ``CLOSED``  — healthy; failures are counted, successes reset the count.
* ``OPEN``    — ``failure_threshold`` consecutive failures tripped it;
  every call is refused (:class:`~repro.errors.CircuitOpenError`) until
  ``reset_after_s`` of clock time has passed.
* ``HALF_OPEN`` — the cool-down elapsed; exactly one probe request is
  let through.  Success closes the breaker, failure re-opens it and
  restarts the cool-down.

The breaker only ever sees *transport-level* outcomes: a server that
answers with an application error (bad codec, queue full) is alive, and
those responses count as successes for the breaker even though the call
raises for the caller.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from ..errors import CircuitOpenError

__all__ = ["RetryPolicy", "CircuitBreaker"]


class RetryPolicy:
    """Seeded full-jitter exponential backoff over a bounded attempt budget.

    ``attempts`` is the total number of tries (first call included), so
    ``attempts=1`` means "never retry".  ``delay(k)`` is the pause *after*
    failed attempt ``k`` (1-based).
    """

    def __init__(
        self,
        *,
        attempts: int = 3,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        seed: int | None = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base_s = base_s
        self.cap_s = cap_s
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Jittered pause after failed attempt ``attempt`` (1-based)."""
        ceiling = min(self.cap_s, self.base_s * (2 ** (attempt - 1)))
        return self._rng.random() * ceiling

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.attempts


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN three-state breaker with injectable clock.

    ``clock`` defaults to :func:`time.monotonic`; tests pass a controlled
    callable so state transitions are exact rather than sleep-raced.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: float | None = None
        self.trips = 0  # times the breaker has opened (telemetry)

    def allow(self) -> None:
        """Gate one call: no-op when permitted, raises when the breaker
        is open and still cooling down.  Moving to HALF_OPEN happens here,
        so the first caller after the cool-down becomes the probe.
        """
        if self.state == self.OPEN:
            assert self.opened_at is not None
            remaining = self.reset_after_s - (self._clock() - self.opened_at)
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit open after {self.failures} consecutive "
                    f"failure(s); retry in {remaining:.2f}s"
                )
            self.state = self.HALF_OPEN

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or (
            self.failures >= self.failure_threshold
        ):
            if self.state != self.OPEN:
                self.trips += 1
            self.state = self.OPEN
            self.opened_at = self._clock()
