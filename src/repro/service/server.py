"""TCP front end: length-prefixed frames over a long-lived connection.

Wire format (both directions)::

    4 bytes  big-endian uint32   JSON header length
    N bytes  UTF-8 JSON          the op / response header
    M bytes  raw body            present iff header["body_len"] == M

Requests carry ``{"op": ...}`` plus op-specific fields; responses carry
``{"ok": true/false, ...}``.  Ops:

``ping``
    liveness → ``{"ok": true, "version": ...}``
``health``
    readiness: status ("ok" / "draining"), queue depth, in-flight count,
    worker count and pool restarts — the supervisor's probe op
``codecs``
    registry listing (canonical names, aliases, profiles)
``stats``
    a :class:`~repro.service.metrics.ServiceStats` snapshot
``compress``
    header: codec, eb, mode, shape, dtype, priority?, deadline_s?;
    body: the raw little-endian field.  Response body: the payload.
    A full queue answers ``{"ok": false, "error": "queue-full"}`` —
    the client sees backpressure explicitly and may retry.
``decompress``
    body: a compressed payload.  Response: shape/dtype header + raw field.
``store_put`` / ``store_read`` / ``store_slice``
    the :class:`~repro.store.ArrayStore` over the wire (requires the
    server to be started with a store root).  ``store_put`` takes the
    raw field as body plus name/codec/eb/mode/n_tiles; ``store_read``
    and ``store_slice`` return the (sub-)field as body, with any
    damaged-tile indices in the header when ``strict`` is off.  A server
    without a store answers ``{"ok": false, "error": "store-not-
    configured"}``.
``store_ls`` / ``store_gc`` / ``store_get_object`` / ``store_put_object``
/ ``store_has_objects`` / ``store_get_manifest`` / ``store_put_manifest``
    the shard-facing primitives: raw content-addressed blob and manifest
    transfer, listing, and a gc that honours cluster-wide ``refs``.  The
    :mod:`repro.shard` gateway speaks these to each shard.
``shard_map``
    the cluster topology (shards, addresses, replication factor) when
    the server was started with one; how clients bootstrap failover.

Store failures cross the wire typed: error responses carry the exception
class name plus op and request id, and :class:`ServiceClient` re-raises
``StoreError`` / ``ChecksumError`` / ``ContainerError`` locally so retry
and failover classification work end-to-end.

:class:`ServiceClient` is the blocking counterpart used by the CLI, the
CI smoke test and anything else that wants the service without asyncio.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import sys
import time
import uuid
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from .. import __version__
from ..codec.registry import REGISTRY
from ..errors import (
    ChecksumError,
    ContainerError,
    QueueFullError,
    ReproError,
    ServiceError,
    ServiceTimeoutError,
    StoreError,
    TransportError,
)
from ..streams import MAX_FIELD_POINTS
from .jobs import make_job
from .resilience import CircuitBreaker, RetryPolicy
from .scheduler import BatchScheduler

__all__ = ["CompressionServer", "ServiceClient", "serve"]

#: Completed responses remembered per request id — big enough that any
#: sane retry window replays from cache, small enough to never matter.
_IDEM_CACHE = 512

#: Ops whose effect must not double-execute when a client retries after
#: a wire failure: the request may have run even though the ack was lost.
#: (The object/manifest ops are naturally idempotent — content-addressed
#: writes — but dedup still saves the replayed work.)
_IDEMPOTENT_OPS = frozenset({
    "compress", "decompress", "store_put",
    "store_put_object", "store_put_manifest",
})

#: Store ops a server without a store root refuses in one place.
_STORE_OPS = frozenset({
    "store_put", "store_read", "store_slice", "store_ls", "store_gc",
    "store_get_object", "store_put_object", "store_has_objects",
    "store_get_manifest", "store_put_manifest",
})

_LEN = struct.Struct(">I")
#: Largest accepted frame header/body (a full float64 field at the
#: library's point cap) — anything bigger is a protocol error, not a job.
_MAX_BODY = MAX_FIELD_POINTS * 8
_MAX_HEADER = 1 << 20


def _pack(header: dict, body: bytes = b"") -> bytes:
    if body:
        header = {**header, "body_len": len(body)}
    j = json.dumps(header).encode()
    return _LEN.pack(len(j)) + j + body


async def _read_header(reader: asyncio.StreamReader) -> tuple[dict, int]:
    """Read one frame's header and validated body length (body not read)."""
    raw = await reader.readexactly(_LEN.size)
    (hlen,) = _LEN.unpack(raw)
    if not 0 < hlen <= _MAX_HEADER:
        raise ServiceError(f"frame header length {hlen} out of range")
    header = json.loads(await reader.readexactly(hlen))
    if not isinstance(header, dict):
        raise ServiceError("frame header is not a JSON object")
    body_len = header.get("body_len", 0)
    if body_len and (
        not isinstance(body_len, int) or not 0 < body_len <= _MAX_BODY
    ):
        raise ServiceError(f"frame body length {body_len!r} out of range")
    return header, int(body_len or 0)


async def _read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes]:
    header, body_len = await _read_header(reader)
    body = await reader.readexactly(body_len) if body_len else b""
    return header, body


class CompressionServer:
    """The asyncio TCP server wrapping a :class:`BatchScheduler`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int | None = None,
        pool_kind: str = "process",
        queue_size: int = 128,
        max_retries: int = 2,
        hang_timeout_s: float | None = None,
        transport: str = "auto",
        batch_bytes: int = 0,
        store_root: str | None = None,
        store_cache_bytes: int | None = None,
        shard_map: dict | None = None,
    ) -> None:
        self.host = host
        self.port = port
        #: Cluster topology served on the ``shard_map`` op when this
        #: server is one shard of a sharded store (``wavesz shard``).
        self.shard_map = shard_map
        self.scheduler = BatchScheduler(
            workers=workers,
            pool_kind=pool_kind,
            queue_size=queue_size,
            max_retries=max_retries,
            hang_timeout_s=hang_timeout_s,
            transport=transport,
            batch_bytes=batch_bytes,
        )
        self.store = None
        if store_root is not None:
            from ..store import DEFAULT_CACHE_BYTES, ArrayStore

            self.store = ArrayStore(
                store_root,
                cache_bytes=(
                    DEFAULT_CACHE_BYTES if store_cache_bytes is None
                    else store_cache_bytes
                ),
                metrics=self.scheduler.metrics,
            )
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._draining = False
        # request-id → Future[response frame]; in-flight entries dedup
        # concurrent replays, completed entries answer late ones.
        self._idem: OrderedDict[str, asyncio.Future] = OrderedDict()

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        # resolve the ephemeral port for clients/tests
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(
        self, *, drain: bool = True, deadline_s: float | None = None
    ) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, bounded.

        New work ops on existing connections are refused the moment this
        is called (``"shutting-down"``); already-accepted jobs run to
        completion so every acked submission gets a real answer.  With
        ``drain=False`` (or once ``deadline_s`` expires) in-flight jobs
        are cancelled and their callers get an explicit failure instead
        of a hang.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop(
            deadline_s=0 if not drain else deadline_s
        )
        # Sever surviving connections: a stopped server must look *down*
        # to its peers (shard failover depends on this), not like a
        # zombie that keeps answering store reads on old sockets.
        for w in list(self._conns):
            w.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- request handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    header, body, done = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    response = await self._dispatch(header, body)
                finally:
                    done()
                writer.write(response)
                await writer.drain()
        except Exception:  # noqa: BLE001 - connection-scoped failure
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[dict, Any, Callable[[], None]]:
        """Read one request, routing large compress bodies socket→shm.

        The classic path copies a field three times before the worker
        sees it: ``readexactly`` joins chunks into ``bytes``,
        ``_parse_field`` materialises an array, and the pool pickles it
        through a pipe.  When the scheduler runs the shm transport, a
        compress body streams chunk-by-chunk *directly into an arena
        segment* instead — one copy, after which the job's `FieldRef`
        crosses the pool by name.  Returns ``(header, body, done)``
        where ``body`` is ``bytes`` (classic) or the adopted ``ndarray``
        view (shm) and ``done()`` releases the server's segment lease
        once the response is built.
        """
        header, body_len = await _read_header(reader)
        arena = getattr(self.scheduler.transport, "arena", None)
        min_bytes = getattr(self.scheduler.transport, "min_bytes", 0)
        if (
            arena is None
            or header.get("op") != "compress"
            or body_len < max(min_bytes, 1)
            or sys.byteorder != "little"  # wire is LE; BE needs the copy
        ):
            body = await reader.readexactly(body_len) if body_len else b""
            return header, body, lambda: None
        shape = tuple(header.get("shape", ()))
        dtype = np.dtype(str(header.get("dtype", "float32")))
        self._check_field(shape, dtype, body_len)
        name = arena.allocate(body_len)
        buf = arena.buffer(name, body_len)
        filled = 0
        try:
            while filled < body_len:
                chunk = await reader.read(min(body_len - filled, 1 << 20))
                if not chunk:
                    raise asyncio.IncompleteReadError(bytes(filled), body_len)
                buf[filled:filled + len(chunk)] = chunk
                filled += len(chunk)
        except BaseException:
            arena.release(name)
            raise
        view = arena.adopt_view(name, dtype, shape)
        return header, view, lambda: arena.release(name)

    async def _dispatch(self, header: dict, body: bytes) -> bytes:
        op = header.get("op")
        req_id = header.get("req_id")
        if (
            op in _IDEMPOTENT_OPS
            and isinstance(req_id, str)
            and req_id
        ):
            return await self._dispatch_idempotent(req_id, header, body)
        return await self._dispatch_inner(header, body)

    async def _dispatch_idempotent(
        self, req_id: str, header: dict, body: bytes
    ) -> bytes:
        """At-most-once execution per request id.

        A retry that lands while the original is still running awaits the
        *same* future; one that lands after completion replays the cached
        response frame.  Either way the job executes exactly once — the
        client may retry as aggressively as it likes.
        """
        fut = self._idem.get(req_id)
        if fut is not None:
            self.scheduler.metrics.incr("server.idem_hits")
            return await asyncio.shield(fut)
        fut = asyncio.get_running_loop().create_future()
        self._idem[req_id] = fut
        while len(self._idem) > _IDEM_CACHE:
            self._idem.popitem(last=False)
        try:
            response = await self._dispatch_inner(header, body)
        except BaseException as exc:
            self._idem.pop(req_id, None)  # do not cache a non-answer
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()  # consumed: avoid the never-retrieved log
            raise
        if not fut.done():
            fut.set_result(response)
        return response

    async def _dispatch_inner(self, header: dict, body: bytes) -> bytes:
        op = header.get("op")
        try:
            if op == "ping":
                return _pack({"ok": True, "version": __version__})
            if op == "health":
                s = self.scheduler
                return _pack({
                    "ok": True,
                    "status": "draining" if self._draining else "ok",
                    "version": __version__,
                    "queue_depth": s.queue.depth,
                    "in_flight": s._in_flight,
                    "workers": s.pool.size,
                    "pool_restarts": s.pool.restarts,
                    "transport": s.transport.name,
                    "batch_bytes": s.batch_bytes,
                    "store": (
                        "absent" if self.store is None
                        else f"{len(self.store.names())} dataset(s)"
                    ),
                })
            if self._draining and op in (
                "compress", "decompress", "store_put",
                "store_put_object", "store_put_manifest", "store_gc",
            ):
                return _pack({
                    "ok": False,
                    "error": "shutting-down",
                    "detail": "server is draining; submit elsewhere",
                })
            if op == "codecs":
                return _pack({"ok": True, "codecs": REGISTRY.describe(),
                              "short_names": list(REGISTRY.short_names())})
            if op == "stats":
                return _pack(
                    {"ok": True, "stats": self.scheduler.stats().to_dict()}
                )
            if op == "shard_map":
                if self.shard_map is None:
                    return _pack({
                        "ok": False,
                        "error": "shard-map-not-configured",
                        "detail": "server is not part of a sharded store",
                    })
                return _pack({"ok": True, "shard_map": self.shard_map})
            if op == "compress":
                return await self._op_compress(header, body)
            if op == "decompress":
                return await self._op_decompress(body)
            if op in _STORE_OPS:
                if self.store is None:
                    return _pack({
                        "ok": False,
                        "error": "store-not-configured",
                        "detail": "server was started without a store root",
                    })
                return await self._op_store(op, header, body)
            return _pack({"ok": False, "error": f"unknown op {op!r}"})
        except QueueFullError as exc:
            return _pack({
                "ok": False,
                "error": "queue-full",
                "detail": str(exc),
                "queue_depth": self.scheduler.queue.depth,
            })
        except ReproError as exc:
            # typed failure: the client re-raises the same taxonomy
            # (StoreError, ChecksumError, ...) with op + request id kept,
            # so retry/failover classification works end to end.
            return _pack({
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
                "op": str(op),
                "req_id": str(header.get("req_id", "-")),
            })

    async def _op_store(self, op: str, header: dict, body: bytes) -> bytes:
        if op == "store_put":
            return await self._op_store_put(header, body)
        if op == "store_read":
            return await self._op_store_read(header)
        if op == "store_slice":
            return await self._op_store_slice(header)
        if op == "store_ls":
            rows = await asyncio.to_thread(self.store.ls)
            for r in rows:
                r["shape"] = list(r["shape"])
            return _pack({"ok": True, "datasets": rows})
        if op == "store_gc":
            refs = header.get("refs", [])
            if not isinstance(refs, list):
                raise ServiceError(f"store_gc refs must be a list, got {refs!r}")
            result = await asyncio.to_thread(
                lambda: self.store.gc(extra_refs=[str(r) for r in refs])
            )
            return _pack({
                "ok": True,
                "removed": result.n_removed,
                "reclaimed_bytes": result.reclaimed_bytes,
                "kept": result.kept,
                "tmp_removed": len(result.tmp_removed),
            })
        if op == "store_get_object":
            blob = await asyncio.to_thread(
                self.store.get_object, str(header.get("digest", ""))
            )
            return _pack({"ok": True}, blob)
        if op == "store_put_object":
            digest, stored = await asyncio.to_thread(
                lambda: self.store.put_object(
                    body,
                    (str(header["digest"])
                     if header.get("digest") is not None else None),
                    overwrite=bool(header.get("overwrite", False)),
                )
            )
            return _pack({"ok": True, "digest": digest, "stored": stored})
        if op == "store_has_objects":
            digests = header.get("digests", [])
            if not isinstance(digests, list):
                raise ServiceError(
                    f"store_has_objects digests must be a list, got {digests!r}"
                )
            have = await asyncio.to_thread(
                self.store.has_objects, [str(d) for d in digests]
            )
            return _pack({"ok": True, "have": have})
        if op == "store_get_manifest":
            m = await asyncio.to_thread(
                self.store.manifest, str(header.get("name", ""))
            )
            return _pack({"ok": True, "manifest": m})
        assert op == "store_put_manifest"
        manifest = header.get("manifest")
        if not isinstance(manifest, dict):
            raise ServiceError(
                "store_put_manifest needs a manifest object in the header"
            )
        await asyncio.to_thread(
            self.store.put_manifest, str(header.get("name", "")), manifest
        )
        return _pack({"ok": True, "name": str(header.get("name", ""))})

    @staticmethod
    def _check_field(
        shape: tuple[int, ...], dtype: np.dtype, body_len: int
    ) -> int:
        n = int(np.prod(shape, dtype=np.int64)) if shape else 0
        if n <= 0 or n > MAX_FIELD_POINTS:
            raise ServiceError(f"bad field shape {shape!r}")
        if body_len != n * dtype.itemsize:
            raise ServiceError(
                f"body holds {body_len} bytes, shape {shape} needs "
                f"{n * dtype.itemsize}"
            )
        return n

    @classmethod
    def _parse_field(cls, header: dict, body: Any) -> np.ndarray:
        """Decode a raw little-endian field body against its shape header.

        ``body`` may already be the adopted shared-memory view built by
        :meth:`_read_request` — it was validated and shaped there, so it
        passes straight through to the job (zero additional copies).
        """
        if isinstance(body, np.ndarray):
            return body
        shape = tuple(header.get("shape", ()))
        dtype = np.dtype(str(header.get("dtype", "float32")))
        cls._check_field(shape, dtype, len(body))
        data = np.frombuffer(body, dtype=dtype.newbyteorder("<"))
        return data.astype(dtype).reshape(shape)

    async def _op_compress(self, header: dict, body: bytes) -> bytes:
        data = self._parse_field(header, body)
        job = make_job(
            str(header.get("codec", "wavesz")),
            data,
            eb=float(header.get("eb", 1e-3)),
            mode=str(header.get("mode", "vr_rel")),
            priority=int(header.get("priority", 0)),
            deadline_s=(
                float(header["deadline_s"])
                if header.get("deadline_s") is not None else None
            ),
            n_tiles=int(header.get("tiles", 1)),
        )
        handle = await self.scheduler.submit(job)  # raises QueueFullError
        result = await self.scheduler.wait(handle)
        assert isinstance(result.output, bytes)
        s = result.stats
        return _pack(
            {
                "ok": True,
                "job_id": result.job_id,
                "codec": result.codec,
                "attempts": result.attempts,
                "latency_s": result.total_s,
                "ratio": s.ratio if s is not None else None,
            },
            result.output,
        )

    async def _op_decompress(self, body: bytes) -> bytes:
        if not body:
            raise ServiceError("decompress needs a payload body")
        job = make_job("auto", op="decompress", payload=body)
        handle = await self.scheduler.submit(job)
        result = await self.scheduler.wait(handle)
        out = result.output
        assert isinstance(out, np.ndarray)
        return _pack(
            {
                "ok": True,
                "job_id": result.job_id,
                "shape": list(out.shape),
                "dtype": str(out.dtype),
                "latency_s": result.total_s,
            },
            np.ascontiguousarray(out).astype(
                out.dtype.newbyteorder("<")
            ).tobytes(),
        )

    # -- store ops --------------------------------------------------------

    async def _op_store_put(self, header: dict, body: bytes) -> bytes:
        data = self._parse_field(header, body)
        assert self.store is not None
        result = await asyncio.to_thread(
            self.store.put,
            str(header.get("name", "")),
            data,
            str(header.get("codec", "wavesz")),
            float(header.get("eb", 1e-3)),
            str(header.get("mode", "vr_rel")),
            n_tiles=int(header.get("n_tiles", 4)),
        )
        return _pack({
            "ok": True,
            "name": result.name,
            "codec": result.codec,
            "n_tiles": result.n_tiles,
            "new_objects": result.new_objects,
            "dedup_objects": result.dedup_objects,
            "stored_bytes": result.stored_bytes,
            "dedup_bytes": result.dedup_bytes,
            "ratio": result.ratio,
        })

    @staticmethod
    def _pack_read(result: Any) -> bytes:
        out = result.data
        return _pack(
            {
                "ok": True,
                "shape": list(out.shape),
                "dtype": str(out.dtype),
                "tiles": list(result.tile_indices),
                "damaged": list(result.damaged_tiles),
            },
            np.ascontiguousarray(out).astype(
                out.dtype.newbyteorder("<")
            ).tobytes(),
        )

    async def _op_store_read(self, header: dict) -> bytes:
        assert self.store is not None
        result = await asyncio.to_thread(
            self.store.read,
            str(header.get("name", "")),
            strict=bool(header.get("strict", True)),
        )
        return self._pack_read(result)

    async def _op_store_slice(self, header: dict) -> bytes:
        assert self.store is not None
        raw = header.get("slices")
        if not isinstance(raw, list):
            raise ServiceError(
                f"store_slice needs a per-axis slices list, got {raw!r}"
            )
        window = tuple(
            None if s is None else (s[0], s[1])
            if isinstance(s, list) and len(s) == 2 else s
            for s in raw
        )
        result = await asyncio.to_thread(
            self.store.read_slice,
            str(header.get("name", "")),
            window,
            strict=bool(header.get("strict", True)),
        )
        return self._pack_read(result)


async def serve(
    host: str = "127.0.0.1",
    port: int = 8123,
    *,
    drain_deadline_s: float | None = 30.0,
    **kwargs: Any,
) -> None:
    """Start a server and run until cancelled (the ``wavesz serve`` body).

    SIGTERM triggers the graceful path: stop accepting, drain in-flight
    jobs for up to ``drain_deadline_s``, then exit — so a supervisor's
    ordinary terminate never drops an acked job.
    """
    import signal

    server = CompressionServer(host, port, **kwargs)
    await server.start()
    store_note = (
        f", store at {server.store.root}" if server.store is not None else ""
    )
    batch_note = (
        f", batch<{server.scheduler.batch_bytes}B"
        if server.scheduler.batch_bytes else ""
    )
    print(f"wavesz service listening on {server.host}:{server.port} "
          f"({server.scheduler.pool.kind} pool, "
          f"{server.scheduler.pool.size} workers, "
          f"{server.scheduler.transport.name} transport{batch_note}, "
          f"queue {server.scheduler.queue.maxsize}{store_note})", flush=True)
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - win
        pass
    try:
        forever = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stop_requested.wait())
        await asyncio.wait(
            (forever, waiter), return_when=asyncio.FIRST_COMPLETED
        )
        forever.cancel()
        waiter.cancel()
        if stop_requested.is_set():
            print("wavesz service draining...", flush=True)
    except asyncio.CancelledError:  # pragma: no cover - SIGINT path
        pass
    finally:
        await server.stop(drain=True, deadline_s=drain_deadline_s)


def _default_socket_factory(
    host: str, port: int, timeout: float | None
) -> Any:
    return socket.create_connection((host, port), timeout=timeout)


class ServiceClient:
    """Blocking client for the service protocol (one socket, many ops).

    Resilient by default: every op runs under a per-request deadline
    (``timeout`` seconds of wall clock covering all socket reads, not
    just connect), wire failures retry with seeded jittered backoff on a
    fresh connection, and a :class:`CircuitBreaker` refuses calls fast
    once the server looks down.  Work ops (``compress``, ``decompress``,
    ``store_put``) carry a generated request id; the server executes
    each id at most once, so a retry after a lost ack replays the cached
    response instead of double-running the job.

    ``socket_factory`` is the chaos seam: anything callable as
    ``(host, port, timeout) -> socket-like`` (see
    :class:`repro.faults.netsim.FlakySocketFactory`).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8123,
        timeout: float = 60.0,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        socket_factory: Callable[..., Any] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retries = 0  # wire-level retries performed (telemetry)
        self._socket_factory = (
            socket_factory if socket_factory is not None
            else _default_socket_factory
        )
        self._sock: Any = None
        self._connect()  # eager: surface a dead server at construction

    def _connect(self) -> None:
        if self._sock is None:
            self._sock = self._socket_factory(
                self.host, self.port, self.timeout
            )

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close races
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- framing ---------------------------------------------------------

    def _recv_exact(self, n: int, deadline: float) -> bytes:
        """Read exactly ``n`` bytes, spending at most the time left until
        ``deadline`` — the timeout is re-armed before *every* recv so a
        byte-dripping peer cannot stretch one request past its budget.

        Uses ``recv_into`` against one preallocated buffer, so a large
        response body lands in place instead of accumulating per-chunk
        ``bytes`` objects joined at the end.  Socket doubles without
        ``recv_into`` (the chaos seam's :class:`FlakyConnection`) fall
        back to plain ``recv``.
        """
        buf = bytearray(n)
        view = memoryview(buf)
        # Resolved on the *type*: fault-injection wrappers (FlakyConnection)
        # delegate unknown attributes to the real socket, and an instance
        # getattr would sidestep their seam entirely.
        recv_into = (
            self._sock.recv_into
            if hasattr(type(self._sock), "recv_into") else None
        )
        got = 0
        while got < n:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("request deadline expired mid-read")
            self._sock.settimeout(remaining)
            want = min(n - got, 1 << 20)
            if recv_into is not None:
                k = recv_into(view[got:got + want])
            else:
                chunk = self._sock.recv(want)
                k = len(chunk)
                view[got:got + k] = chunk
            if not k:
                raise ConnectionResetError(
                    "server closed the connection mid-frame"
                )
            got += k
        return bytes(buf)

    def _once(
        self, header: dict, body: bytes, deadline: float
    ) -> tuple[dict, bytes]:
        """One wire attempt: connect if needed, send, read the response."""
        self._connect()
        self._sock.sendall(_pack(header, body))
        (hlen,) = _LEN.unpack(self._recv_exact(_LEN.size, deadline))
        resp = json.loads(self._recv_exact(hlen, deadline))
        rbody = self._recv_exact(resp.get("body_len", 0), deadline)
        return resp, rbody

    def _roundtrip(
        self, header: dict, body: bytes = b""
    ) -> tuple[dict, bytes]:
        op = str(header.get("op"))
        if op in _IDEMPOTENT_OPS:
            header = {**header, "req_id": uuid.uuid4().hex}
        req_id = header.get("req_id", "-")
        attempt = 0
        while True:
            attempt += 1
            self.breaker.allow()  # raises CircuitOpenError when open
            deadline = time.monotonic() + self.timeout
            try:
                resp, rbody = self._once(header, body, deadline)
            except (socket.timeout, TimeoutError) as exc:
                err: ServiceError = ServiceTimeoutError(
                    f"{op} (request {req_id}) hit its {self.timeout:g}s "
                    f"deadline on attempt {attempt}: {exc}"
                )
                cause: BaseException = exc
            except (ConnectionError, OSError) as exc:
                err = TransportError(
                    f"{op} (request {req_id}) wire failure on attempt "
                    f"{attempt}: {type(exc).__name__}: {exc}"
                )
                cause = exc
            else:
                # an application-level error still proves the server is
                # alive — the breaker only tracks transport outcomes.
                self.breaker.record_success()
                return resp, rbody
            self.breaker.record_failure()
            self._drop_connection()
            if not self.retry.should_retry(attempt):
                raise err from cause
            self.retries += 1
            time.sleep(self.retry.delay(attempt))

    #: Wire error names that re-raise as their local exception type, so a
    #: caller (gateway, CLI) classifies a remote store failure exactly
    #: like a local one.  Anything unlisted stays a generic ServiceError.
    _WIRE_ERRORS: dict[str, type[ReproError]] = {
        "StoreError": StoreError,
        "ChecksumError": ChecksumError,
        "ContainerError": ContainerError,
    }

    @classmethod
    def _check(cls, resp: dict) -> dict:
        if not resp.get("ok"):
            name = resp.get("error", "error")
            if name == "queue-full":
                raise QueueFullError(resp.get("detail", "queue full"))
            context = ""
            if resp.get("op"):
                context = f" [op {resp['op']}, request {resp.get('req_id', '-')}]"
            exc_type = cls._WIRE_ERRORS.get(str(name))
            if exc_type is not None:
                raise exc_type(f"{resp.get('detail', '')}{context}")
            raise ServiceError(
                f"{name}: {resp.get('detail', '')}{context}"
            )
        return resp

    # -- ops -------------------------------------------------------------

    def ping(self) -> dict:
        return self._check(self._roundtrip({"op": "ping"})[0])

    def health(self) -> dict:
        """Liveness + readiness: status, queue depth, pool restarts."""
        return self._check(self._roundtrip({"op": "health"})[0])

    def codecs(self) -> dict:
        return self._check(self._roundtrip({"op": "codecs"})[0])

    def stats(self) -> dict:
        return self._check(self._roundtrip({"op": "stats"})[0])["stats"]

    def compress(
        self,
        data: np.ndarray,
        codec: str = "wavesz",
        eb: float = 1e-3,
        mode: str = "vr_rel",
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        tiles: int = 1,
    ) -> tuple[bytes, dict]:
        """Compress one field; returns (payload, response header).

        ``tiles > 1`` requests a tiled compression; dp-capable codecs
        spread the bands across the server's worker pool.
        """
        data = np.ascontiguousarray(data)
        resp, body = self._roundtrip(
            {
                "op": "compress",
                "codec": codec,
                "eb": eb,
                "mode": mode,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "priority": priority,
                "deadline_s": deadline_s,
                "tiles": tiles,
            },
            data.astype(data.dtype.newbyteorder("<")).tobytes(),
        )
        self._check(resp)
        return body, resp

    def decompress(self, payload: bytes) -> np.ndarray:
        resp, body = self._roundtrip({"op": "decompress"}, payload)
        resp = self._check(resp)
        dtype = np.dtype(str(resp["dtype"]))
        return np.frombuffer(body, dtype=dtype.newbyteorder("<")).astype(
            dtype
        ).reshape(resp["shape"])

    # -- store ops --------------------------------------------------------

    def store_put(
        self,
        name: str,
        data: np.ndarray,
        codec: str = "wavesz",
        eb: float = 1e-3,
        mode: str = "vr_rel",
        *,
        n_tiles: int = 4,
    ) -> dict:
        """Persist one field in the server's store; returns the put report."""
        data = np.ascontiguousarray(data)
        resp, _ = self._roundtrip(
            {
                "op": "store_put",
                "name": name,
                "codec": codec,
                "eb": eb,
                "mode": mode,
                "n_tiles": n_tiles,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
            },
            data.astype(data.dtype.newbyteorder("<")).tobytes(),
        )
        return self._check(resp)

    @staticmethod
    def _unpack_read(resp: dict, body: bytes) -> tuple[np.ndarray, dict]:
        dtype = np.dtype(str(resp["dtype"]))
        out = np.frombuffer(body, dtype=dtype.newbyteorder("<")).astype(
            dtype
        ).reshape(resp["shape"])
        return out, resp

    def store_read(
        self, name: str, *, strict: bool = True
    ) -> tuple[np.ndarray, dict]:
        """Read a full stored field; returns (field, response header).

        With ``strict=False`` the header's ``"damaged"`` list names any
        tile indices that were lost (their rows come back zero-filled).
        """
        resp, body = self._roundtrip(
            {"op": "store_read", "name": name, "strict": strict}
        )
        return self._unpack_read(self._check(resp), body)

    def store_slice(
        self, name: str, slices, *, strict: bool = True
    ) -> tuple[np.ndarray, dict]:
        """Read a sub-window of a stored field, decoding only its tiles.

        ``slices`` is a per-axis sequence of ``slice`` objects,
        ``(start, stop)`` pairs or ``None`` (full axis); trailing axes
        default to their full extent.
        """
        wire = [
            None if s is None
            else [s.start, s.stop] if isinstance(s, slice)
            else [s[0], s[1]]
            for s in slices
        ]
        resp, body = self._roundtrip(
            {"op": "store_slice", "name": name, "slices": wire,
             "strict": strict}
        )
        return self._unpack_read(self._check(resp), body)

    # -- shard-facing store primitives ------------------------------------
    # Raw object / manifest transfer: what the gateway speaks to each
    # shard.  All of these re-raise typed store errors (see _WIRE_ERRORS).

    def store_ls(self) -> list[dict]:
        rows = self._check(self._roundtrip({"op": "store_ls"})[0])["datasets"]
        for r in rows:
            r["shape"] = tuple(r["shape"])
        return rows

    def store_gc(self, refs=()) -> dict:
        """Garbage-collect the remote store, keeping ``refs`` digests too.

        A sharded deployment must pass the cluster-wide referenced set:
        this shard may hold tiles whose manifests live on other shards.
        """
        return self._check(self._roundtrip(
            {"op": "store_gc", "refs": [str(r) for r in refs]}
        )[0])

    def store_get_object(self, digest: str) -> bytes:
        resp, body = self._roundtrip(
            {"op": "store_get_object", "digest": digest}
        )
        self._check(resp)
        return body

    def store_put_object(
        self, blob: bytes, digest: str | None = None, *,
        overwrite: bool = False,
    ) -> tuple[str, bool]:
        """Store one content-addressed blob; returns (digest, stored)."""
        header: dict = {"op": "store_put_object", "overwrite": overwrite}
        if digest is not None:
            header["digest"] = digest
        resp = self._check(self._roundtrip(header, blob)[0])
        return str(resp["digest"]), bool(resp["stored"])

    def store_has_objects(self, digests) -> dict[str, bool]:
        resp = self._check(self._roundtrip(
            {"op": "store_has_objects", "digests": [str(d) for d in digests]}
        )[0])
        return {str(k): bool(v) for k, v in resp["have"].items()}

    def store_get_manifest(self, name: str) -> dict:
        return self._check(self._roundtrip(
            {"op": "store_get_manifest", "name": name}
        )[0])["manifest"]

    def store_put_manifest(self, name: str, manifest: dict) -> None:
        self._check(self._roundtrip(
            {"op": "store_put_manifest", "name": name, "manifest": manifest}
        )[0])

    def shard_map(self) -> dict:
        """The cluster topology this server belongs to (gateway op)."""
        return self._check(
            self._roundtrip({"op": "shard_map"})[0]
        )["shard_map"]
