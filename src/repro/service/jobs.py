"""Job model for the batch-compression service.

A :class:`CompressionJob` is the immutable, *picklable* description of one
unit of work — everything a worker process needs to run it.  The mutable
lifecycle (state, attempts, timings, result/error) lives in the
:class:`JobHandle` the scheduler hands back at submission, so jobs can
cross the process boundary while their bookkeeping stays in the parent.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..codec.registry import REGISTRY
from ..errors import ConfigError, ContainerError, DTypeError
from ..types import CompressionStats

__all__ = [
    "JobState",
    "CompressionJob",
    "JobResult",
    "JobHandle",
    "make_job",
]

_JOB_SEQ = itertools.count(1)


class JobState(enum.Enum):
    """Lifecycle of a job inside the scheduler.

    ``PENDING`` → ``QUEUED`` → ``RUNNING`` → one of the terminal states
    ``DONE`` / ``FAILED`` / ``EXPIRED``; ``REJECTED`` is terminal straight
    from submission (queue-full backpressure).
    """

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EXPIRED = "expired"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE, JobState.FAILED, JobState.EXPIRED, JobState.REJECTED
        )


@dataclass(frozen=True)
class CompressionJob:
    """One unit of service work, self-contained and picklable.

    ``op`` is ``"compress"`` (``data`` set) or ``"decompress"`` (``payload``
    set).  ``codec`` may be any registry name — canonical, alias or profile
    (profiles like ``"wavesz-g"`` matter: they configure the factory) —
    and is validated at construction.  ``priority`` orders the queue
    (higher first, FIFO within a level); ``deadline_s`` is a TTL in
    seconds from submission after which the scheduler refuses to start
    the job.

    ``n_tiles > 1`` asks for a tiled compression through the shared
    :func:`repro.parallel.plan_bands` plan (``tiled[...]`` payload,
    decoded transparently by ``decompress_auto``).  For data-parallel
    codecs the scheduler fans the bands of *one* job across the worker
    pool; other codecs tile serially inside a single worker — the
    payload is byte-identical either way.
    """

    job_id: str
    codec: str
    op: str = "compress"
    data: np.ndarray | None = None
    payload: bytes | None = None
    eb: float = 1e-3
    mode: str = "vr_rel"
    priority: int = 0
    deadline_s: float | None = None
    n_tiles: int = 1

    def __post_init__(self) -> None:
        if self.op not in ("compress", "decompress"):
            raise ConfigError(f"unknown job op {self.op!r}")
        if self.op == "compress":
            if self.codec not in REGISTRY:
                raise ContainerError(
                    f"no compressor registered for variant {self.codec!r}"
                )
            if not isinstance(self.data, np.ndarray):
                raise ConfigError("compress jobs need a numpy `data` array")
            if self.data.dtype not in (np.float32, np.float64):
                raise DTypeError(
                    f"compress jobs take float32/float64 fields, "
                    f"got {self.data.dtype}"
                )
            if not (self.eb > 0):
                raise ConfigError(f"error bound must be positive, got {self.eb}")
        else:
            if not isinstance(self.payload, (bytes, bytearray)):
                raise ConfigError("decompress jobs need a bytes `payload`")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.n_tiles < 1:
            raise ConfigError(f"n_tiles must be >= 1, got {self.n_tiles}")
        if self.n_tiles > 1:
            if self.op != "compress":
                raise ConfigError(
                    "n_tiles applies to compress jobs only (tiled payloads "
                    "decompress transparently through decompress_auto)"
                )
            assert self.data is not None
            if self.data.ndim < 2:
                raise ConfigError(
                    f"tiled compression needs a >= 2D field, "
                    f"got {self.data.ndim}D"
                )

    @property
    def metrics_key(self) -> str:
        """The per-codec label metrics are keyed by.

        The *requested* name, so profiles (``"wavesz-g"``) stay visible as
        their own series; decompress jobs share one ``"decompress"`` key
        because dispatch happens inside the worker.
        """
        return self.codec if self.op == "compress" else "decompress"

    @property
    def input_bytes(self) -> int:
        if self.op == "compress":
            assert self.data is not None
            return int(self.data.size * self.data.dtype.itemsize)
        assert self.payload is not None
        return len(self.payload)

    @property
    def batch_eligible(self) -> bool:
        """Whether this job may ride a coalesced worker dispatch.

        Multi-tile jobs are excluded: their bands are already an
        intra-job parallel axis, and batching would serialize them
        behind unrelated small jobs.
        """
        return self.n_tiles == 1


def make_job(
    codec: str,
    data: np.ndarray | None = None,
    *,
    payload: bytes | None = None,
    op: str = "compress",
    eb: float = 1e-3,
    mode: str = "vr_rel",
    priority: int = 0,
    deadline_s: float | None = None,
    n_tiles: int = 1,
    job_id: str | None = None,
) -> CompressionJob:
    """Build a validated job with an auto-assigned id."""
    return CompressionJob(
        job_id=job_id if job_id is not None else f"job-{next(_JOB_SEQ)}",
        codec=codec,
        op=op,
        data=None if data is None else np.ascontiguousarray(data),
        payload=payload,
        eb=eb,
        mode=mode,
        priority=priority,
        deadline_s=deadline_s,
        n_tiles=n_tiles,
    )


@dataclass(frozen=True)
class JobResult:
    """Terminal success record for one job.

    ``output`` is the compressed payload bytes (compress) or the restored
    array (decompress); ``stats`` is present for compress jobs only.
    ``queued_s`` / ``run_s`` split the end-to-end ``total_s`` latency into
    time spent waiting and time spent in a worker (the last attempt).
    """

    job_id: str
    codec: str
    op: str
    output: Any
    stats: CompressionStats | None
    attempts: int
    queued_s: float
    run_s: float
    total_s: float


class JobHandle:
    """Mutable tracking for one submitted job (parent process only)."""

    def __init__(self, job: CompressionJob) -> None:
        self.job = job
        self.state = JobState.PENDING
        self.attempts = 0
        self.error: BaseException | None = None
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done: Any = None  # asyncio.Event, bound lazily by the scheduler
        self.result: JobResult | None = None

    @property
    def expired(self) -> bool:
        d = self.job.deadline_s
        return d is not None and (time.monotonic() - self.submitted_at) > d

    def finish(
        self, state: JobState, *,
        result: JobResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.monotonic()
        if self._done is not None:
            self._done.set()
