"""Batch-compression service: jobs, scheduling, workers, metrics, serving.

The serving layer over the codec registry — a long-lived process that
accepts many compression jobs, schedules them through a bounded queue
(explicit backpressure), executes them on a process worker pool (CEAZ /
cuSZ-style coarse-grained batch parallelism over independent fields),
retries transient faults with backoff, and exposes live metrics.

Quickstart (batch)::

    from repro.service import make_job, run_batch

    jobs = [make_job("sz14", field_a), make_job("wavesz", field_b, eb=1e-4)]
    results, stats = run_batch(jobs, workers=4)
    payloads = [r.output for r in results]
    print(stats.to_dict()["latency"]["overall"])

Quickstart (server)::

    # shell 1                          # shell 2
    $ wavesz serve --port 8123         >>> from repro.service import ServiceClient
                                       >>> c = ServiceClient(port=8123)
                                       >>> payload, info = c.compress(field, "sz14")

Every result is bit-identical to the single-threaded library call — the
workers run the exact same codec code, and the golden-stream tests pin
the wire format.
"""

from .jobs import CompressionJob, JobHandle, JobResult, JobState, make_job
from .metrics import LatencySummary, MetricsRegistry, ServiceStats
from .queue import BoundedJobQueue
from .resilience import CircuitBreaker, RetryPolicy
from .scheduler import BatchScheduler, run_batch
from .server import CompressionServer, ServiceClient, serve
from .shm import FieldRef, PickleTransport, ShmArena, ShmTransport
from .workers import WorkerPool, tile_compress_parallel

__all__ = [
    "FieldRef",
    "ShmArena",
    "ShmTransport",
    "PickleTransport",
    "RetryPolicy",
    "CircuitBreaker",
    "CompressionJob",
    "JobHandle",
    "JobResult",
    "JobState",
    "make_job",
    "LatencySummary",
    "MetricsRegistry",
    "ServiceStats",
    "BoundedJobQueue",
    "BatchScheduler",
    "run_batch",
    "CompressionServer",
    "ServiceClient",
    "serve",
    "WorkerPool",
    "tile_compress_parallel",
]
