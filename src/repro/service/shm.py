"""Zero-copy shared-memory field transport for the worker pool.

The service's dispatch chain used to move every field by value: the
scheduler pickles the full ``ndarray`` into the process-pool pipe, the
OS copies it through a socketpair, and the worker unpickles it again —
three full-field copies per job *before* any compression happens, which
is why ``BENCH_service.json`` showed throughput flat from 1→4 workers.
This module replaces the value channel with a name channel:

:class:`ShmArena`
    A registry of refcounted ``multiprocessing.shared_memory`` segments
    owned by the scheduler process.  Segments are leased per job,
    released (and pooled or unlinked) when the job settles, reclaimed if
    a worker is killed mid-lease, and unconditionally unlinked at
    :meth:`ShmArena.close` and interpreter exit — the arena is the one
    place segment lifetime lives, so a crash cannot strand ``/dev/shm``.

:class:`FieldRef`
    The picklable descriptor that crosses the pool instead of the array:
    segment name, dtype, shape, offset, byte length.  A worker attaches
    the segment by name and maps a read-only ``ndarray`` view over it —
    no bytes move.  Offsets let many small fields (micro-batches) or the
    contiguous tile bands of one field share a single segment.

:class:`ShmTransport` / :class:`PickleTransport`
    The scheduler-facing seam.  ``shm`` rewrites jobs into
    :class:`_JobMessage` envelopes (inputs *and* large outputs ride
    segments); ``pickle`` passes jobs through unchanged — the transparent
    fallback for ``thread``/``inline`` pools (same address space, a copy
    channel would only add work) and for platforms without usable shared
    memory.  Both run the exact same :func:`~repro.service.workers.
    run_job` in the worker, so results are byte-identical across
    transports by construction.

Worker-side module functions (:func:`run_job_message`,
:func:`run_job_group`, :func:`run_band_message`) live here at module
level so process pools can pickle them.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import ServiceError
from .jobs import CompressionJob

__all__ = [
    "SHM_MIN_BYTES",
    "FieldRef",
    "ShmArena",
    "PickleTransport",
    "ShmTransport",
    "run_job_message",
    "run_job_group",
    "run_band_message",
    "resolve_transport",
]

#: Fields smaller than this ride the pickle channel even under the shm
#: transport: below ~64 KiB the segment machinery (shm_open + mmap +
#: attach in the worker) costs more than pickling the bytes.  Micro-
#: batching is the tool for small jobs, not shared memory.
SHM_MIN_BYTES = 64 * 1024

#: Segment payloads are packed at cache-line alignment so every view in a
#: shared segment starts on an aligned address.
_ALIGN = 64

#: Largest segment the arena keeps in its free pool for reuse, and the
#: pool's total byte budget.  Reusing a warm segment turns dispatch into
#: a single memcpy; the cap keeps idle services from pinning memory.
_POOL_MAX_SEGMENT = 64 * 1024 * 1024
_POOL_MAX_BYTES = 256 * 1024 * 1024

#: Worker-side attachment cache (name → SharedMemory).  Pooled segments
#: keep their names across jobs, so workers re-map the same segment once.
_ATTACH_CACHE_SLOTS = 16


def _round_up(n: int, align: int = _ALIGN) -> int:
    return (n + align - 1) // align * align


def _size_class(nbytes: int) -> int:
    """Pool bucket: next power of two, floored at one page."""
    size = 4096
    while size < nbytes:
        size *= 2
    return size


@dataclass(frozen=True)
class FieldRef:
    """A picklable pointer into a shared-memory segment.

    ``kind`` is ``"array"`` (a dtype/shape-typed field view) or
    ``"bytes"`` (an opaque payload, e.g. a compressed container).
    """

    segment: str
    kind: str
    nbytes: int
    offset: int = 0
    dtype: str = ""
    shape: tuple[int, ...] = ()


class _Segment:
    """One tracked segment: the mapping plus its lease count."""

    __slots__ = ("shm", "size", "refs", "views")

    def __init__(self, shm: Any, size: int) -> None:
        self.shm = shm
        self.size = size
        self.refs = 0
        #: Arrays we handed out over this segment (zero-copy adoption);
        #: pinned so ``id()`` stays unambiguous for the lifetime of the
        #: lease and the buffer cannot outlive its mapping.
        self.views: list[np.ndarray] = []


class ShmArena:
    """Refcounted shared-memory segments with a crash-safe lifecycle.

    Thread-safe: the asyncio scheduler allocates from the event loop
    while the TCP server's body reader may fill segments from the same
    loop and tests poke it from other threads.
    """

    _available: bool | None = None

    def __init__(self, *, metrics: Any = None) -> None:
        # Unique per-arena namespace: segments are named
        # ``wsz<token>-<seq>`` (parent-created) / ``wsz<token>o...``
        # (worker-created outputs), so leaked segments are findable by
        # prefix and names are never reused within an arena.
        self.prefix = f"wsz{secrets.token_hex(4)}"
        self.metrics = metrics
        self._lock = threading.Lock()
        self._segments: dict[str, _Segment] = {}
        self._pool: dict[int, list[str]] = {}
        self._pool_bytes = 0
        self._seq = 0
        self._adopted: dict[int, tuple[str, FieldRef]] = {}
        self.leaks_reclaimed = 0
        atexit.register(self.close)

    # -- platform ---------------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """Whether this platform can create shared-memory segments."""
        if cls._available is None:
            try:
                from multiprocessing import shared_memory

                probe = shared_memory.SharedMemory(create=True, size=4096)
                probe.close()
                probe.unlink()
                cls._available = True
            except (ImportError, OSError, ValueError):
                cls._available = False
        return cls._available

    # -- accounting -------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Total bytes mapped by this arena (leased + pooled)."""
        with self._lock:
            return sum(s.size for s in self._segments.values())

    @property
    def leased_bytes(self) -> int:
        """Bytes of segments currently leased to in-flight work."""
        with self._lock:
            return sum(s.size for s in self._segments.values() if s.refs > 0)

    @property
    def leased_segments(self) -> int:
        with self._lock:
            return sum(1 for s in self._segments.values() if s.refs > 0)

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("shm.resident_bytes", self.resident_bytes)

    # -- allocation -------------------------------------------------------

    def _create_locked(self, size: int) -> _Segment:
        from multiprocessing import shared_memory

        self._seq += 1
        name = f"{self.prefix}-{self._seq}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        seg = _Segment(shm, size)
        self._segments[shm.name] = seg
        return seg

    def allocate(self, nbytes: int) -> str:
        """Lease a segment of at least ``nbytes``; returns its name.

        Reuses a pooled segment of the same size class when one is free
        (dispatch then costs one memcpy, no syscalls); otherwise creates
        a fresh one.  The caller owns one lease and must
        :meth:`release` it exactly once.
        """
        if nbytes <= 0:
            raise ServiceError(f"cannot allocate {nbytes} shared bytes")
        size = _size_class(nbytes)
        with self._lock:
            free = self._pool.get(size)
            if free:
                name = free.pop()
                self._pool_bytes -= size
                seg = self._segments[name]
            else:
                seg = self._create_locked(size)
                name = seg.shm.name
            seg.refs = 1
        self._gauge()
        return name

    def buffer(self, name: str, nbytes: int, offset: int = 0) -> memoryview:
        """A writable view over ``nbytes`` of a leased segment."""
        with self._lock:
            seg = self._segments[name]
        return seg.shm.buf[offset:offset + nbytes]

    def lease(self, name: str, n: int = 1) -> None:
        """Add ``n`` leases to a live segment."""
        with self._lock:
            self._segments[name].refs += n

    def release(self, name: str, n: int = 1) -> None:
        """Drop ``n`` leases; the last one pools or unlinks the segment."""
        unlink: _Segment | None = None
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                return  # already reclaimed (close() raced a late release)
            seg.refs -= n
            if seg.refs > 0:
                return
            for view in seg.views:
                self._adopted.pop(id(view), None)
            seg.views.clear()
            if (
                seg.size <= _POOL_MAX_SEGMENT
                and self._pool_bytes + seg.size <= _POOL_MAX_BYTES
            ):
                self._pool.setdefault(seg.size, []).append(name)
                self._pool_bytes += seg.size
            else:
                del self._segments[name]
                unlink = seg
        if unlink is not None:
            self._unlink(unlink.shm)
        self._gauge()

    @staticmethod
    def _unlink(shm: Any) -> None:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - close races
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    # -- field helpers ----------------------------------------------------

    def put_array(self, data: np.ndarray) -> FieldRef:
        """Copy one field into a fresh lease and describe it."""
        data = np.ascontiguousarray(data)
        name = self.allocate(data.nbytes)
        dst = np.ndarray(data.shape, dtype=data.dtype,
                         buffer=self.buffer(name, data.nbytes))
        dst[...] = data
        return FieldRef(
            segment=name, kind="array", nbytes=data.nbytes,
            dtype=str(data.dtype), shape=tuple(data.shape),
        )

    def put_bytes(self, payload: bytes) -> FieldRef:
        """Copy an opaque payload into a fresh lease and describe it."""
        name = self.allocate(len(payload))
        self.buffer(name, len(payload))[:] = payload
        return FieldRef(segment=name, kind="bytes", nbytes=len(payload))

    def adopt_view(
        self, name: str, dtype: np.dtype, shape: tuple[int, ...],
        offset: int = 0,
    ) -> np.ndarray:
        """Map an ndarray over a leased segment and remember the mapping.

        The zero-copy ingest path: the server streams a request body
        straight into a segment, adopts a view, and hands that array to
        ``make_job``.  When the scheduler later encodes the job,
        :meth:`ref_of` recognises the array and ships a :class:`FieldRef`
        instead of copying the field a second time.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        view = np.ndarray(shape, dtype=dtype,
                          buffer=self.buffer(name, nbytes, offset))
        ref = FieldRef(
            segment=name, kind="array", nbytes=nbytes, offset=offset,
            dtype=str(dtype), shape=tuple(shape),
        )
        with self._lock:
            seg = self._segments[name]
            seg.views.append(view)
            self._adopted[id(view)] = (name, ref)
        return view

    def ref_of(self, data: np.ndarray) -> FieldRef | None:
        """The adopted :class:`FieldRef` backing ``data``, if any."""
        with self._lock:
            hit = self._adopted.get(id(data))
        return hit[1] if hit is not None else None

    # -- reclamation ------------------------------------------------------

    def reclaim_orphans(self) -> int:
        """Unlink worker-created output segments whose worker died.

        Workers name their output segments ``<prefix>o...``; a worker
        SIGKILLed between creating one and returning its ref leaks it.
        The parent owns the namespace, so a prefix scan of ``/dev/shm``
        finds and unlinks every orphan (best-effort on platforms without
        a scannable shm directory).
        """
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
            return 0
        from multiprocessing import shared_memory

        reclaimed = 0
        marker = f"{self.prefix}o"
        with self._lock:
            tracked = set(self._segments)
        for entry in os.listdir(shm_dir):
            if not entry.startswith(marker) or entry in tracked:
                continue
            try:
                orphan = shared_memory.SharedMemory(name=entry)
            except (OSError, ValueError):  # pragma: no cover - races
                continue
            self._unlink(orphan)
            reclaimed += 1
        if reclaimed:
            self.leaks_reclaimed += reclaimed
            if self.metrics is not None:
                self.metrics.incr("shm.leaks_reclaimed", reclaimed)
        return reclaimed

    def close(self) -> None:
        """Unlink every segment (leaked leases included) and all orphans.

        Idempotent and re-entrant-safe; registered with ``atexit`` so an
        interpreter exit — orderly or not — cannot strand ``/dev/shm``.
        The arena remains usable after close (a fresh allocation simply
        creates a fresh segment), which keeps scheduler restart cheap.
        """
        with self._lock:
            segments = list(self._segments.values())
            leaked = sum(1 for s in segments if s.refs > 0)
            self._segments.clear()
            self._pool.clear()
            self._pool_bytes = 0
            self._adopted.clear()
        for seg in segments:
            seg.views.clear()
            self._unlink(seg.shm)
        if leaked:
            self.leaks_reclaimed += leaked
            if self.metrics is not None:
                self.metrics.incr("shm.leaks_reclaimed", leaked)
        self.reclaim_orphans()
        self._gauge()


# -- worker side ----------------------------------------------------------
#
# Everything below runs inside pool workers.  Attachments are cached by
# name: pooled segments keep their names across jobs, so a warm worker
# re-maps nothing.  Names are never reused by an arena, so a cached
# mapping can never alias a different segment.

_attachments: OrderedDict[str, Any] = OrderedDict()


class _no_tracking:
    """Open a ``SharedMemory`` without resource-tracker registration.

    Before Python 3.13 every ``SharedMemory`` — attach included —
    registers with the ``multiprocessing`` resource tracker, whose job
    is to unlink "leaked" segments at process exit: exactly wrong for a
    worker touching a segment the *scheduler* owns (fork start method:
    the shared tracker would lose the parent's registration; spawn: the
    worker's private tracker would unlink a live segment at worker
    exit).  Suppressing the registration — rather than unregistering
    after the fact — keeps the tracker's bookkeeping balanced under
    both start methods.  Workers run one task at a time, so the brief
    monkeypatch is not racy in practice.
    """

    def __enter__(self) -> None:
        from multiprocessing import resource_tracker

        self._mod = resource_tracker
        self._orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None

    def __exit__(self, *exc: Any) -> None:
        self._mod.register = self._orig


def _open_untracked(name: str, *, create: bool = False, size: int = 0) -> Any:
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(
            name=name, create=create, size=size, track=False
        )
    except TypeError:  # Python < 3.13: no track= keyword
        with _no_tracking():
            return shared_memory.SharedMemory(
                name=name, create=create, size=size
            )


def _attach(name: str) -> Any:
    shm = _attachments.get(name)
    if shm is not None:
        _attachments.move_to_end(name)
        return shm
    shm = _open_untracked(name)
    _attachments[name] = shm
    while len(_attachments) > _ATTACH_CACHE_SLOTS:
        _, old = _attachments.popitem(last=False)
        try:
            old.close()
        except (OSError, BufferError):  # pragma: no cover - view still live
            pass
    return shm


def _view(ref: FieldRef) -> np.ndarray:
    """A read-only ndarray over a :class:`FieldRef` (zero copies)."""
    shm = _attach(ref.segment)
    arr = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype),
        buffer=shm.buf[ref.offset:ref.offset + ref.nbytes],
    )
    arr.flags.writeable = False  # inputs are immutable; enforce it
    return arr


def _ref_bytes(ref: FieldRef) -> bytes:
    shm = _attach(ref.segment)
    return bytes(shm.buf[ref.offset:ref.offset + ref.nbytes])


@dataclass(frozen=True)
class _JobMessage:
    """A :class:`CompressionJob` with its bulk fields swapped for refs."""

    job_id: str
    codec: str
    op: str
    eb: float
    mode: str
    priority: int
    deadline_s: float | None
    n_tiles: int
    data_ref: FieldRef | None = None
    payload_ref: FieldRef | None = None
    payload: bytes | None = None
    #: Worker-created output segments are named under this namespace so
    #: the parent arena can reclaim them if the worker dies mid-return.
    out_prefix: str = ""
    out_min_bytes: int = 0


@dataclass(frozen=True)
class _ShmResult:
    """A job output whose payload rides a worker-created segment.

    ``shell`` is the original result object with its bulk field blanked
    (``payload=b""`` for compress results); the parent reattaches the
    bytes and reconstructs the exact object the pickle path would have
    returned — byte-identical by construction.
    """

    ref: FieldRef
    shell: Any
    kind: str  # "payload" (CompressedField/TiledResult) | "array"


_out_seq = 0


def _ship_bytes(payload: bytes, out_prefix: str) -> FieldRef:
    """Create a one-shot output segment in the worker and fill it.

    Untracked: the *parent* unlinks it (in ``decode_result``, or via the
    orphan scan if this worker dies first) — this worker's exit must not.
    """
    global _out_seq
    _out_seq += 1
    name = f"{out_prefix}o{os.getpid()}x{_out_seq}"
    shm = _open_untracked(name, create=True, size=len(payload))
    shm.buf[:len(payload)] = payload
    shm.close()
    return FieldRef(segment=name, kind="bytes", nbytes=len(payload))


def _encode_output(out: Any, msg: _JobMessage) -> Any:
    """Route large outputs through shared memory (small ones pickle)."""
    if not msg.out_prefix or msg.out_min_bytes <= 0:
        return out
    payload = getattr(out, "payload", None)
    if isinstance(payload, bytes) and len(payload) >= msg.out_min_bytes:
        ref = _ship_bytes(payload, msg.out_prefix)
        return _ShmResult(ref=ref, shell=replace(out, payload=b""),
                          kind="payload")
    if isinstance(out, np.ndarray) and out.nbytes >= msg.out_min_bytes:
        contig = np.ascontiguousarray(out)
        ref = FieldRef(
            segment=_ship_bytes(contig.tobytes(), msg.out_prefix).segment,
            kind="array", nbytes=contig.nbytes,
            dtype=str(contig.dtype), shape=tuple(contig.shape),
        )
        return _ShmResult(ref=ref, shell=None, kind="array")
    return out


def _job_of(msg: _JobMessage) -> CompressionJob:
    data = _view(msg.data_ref) if msg.data_ref is not None else None
    payload = msg.payload
    if msg.payload_ref is not None:
        payload = _ref_bytes(msg.payload_ref)
    return CompressionJob(
        job_id=msg.job_id, codec=msg.codec, op=msg.op,
        data=data, payload=payload, eb=msg.eb, mode=msg.mode,
        priority=msg.priority, deadline_s=msg.deadline_s,
        n_tiles=msg.n_tiles,
    )


def run_job_message(msg: _JobMessage) -> Any:
    """Worker entry for one shm-encoded job (the zero-copy twin of
    :func:`~repro.service.workers.run_job`)."""
    from .workers import run_job

    return _encode_output(run_job(_job_of(msg)), msg)


def run_job_group(msgs: Sequence[Any]) -> list[Any]:
    """Worker entry for one micro-batched dispatch.

    ``msgs`` holds :class:`_JobMessage` envelopes (shm transport) or
    plain :class:`CompressionJob` objects (pickle transport); outputs
    align with inputs.  Batched jobs are small by contract, so their
    outputs return by value.
    """
    from .workers import run_job

    return [
        run_job(m if isinstance(m, CompressionJob) else _job_of(m))
        for m in msgs
    ]


def run_band_message(codec: str, ref: FieldRef, eb_abs: float) -> Any:
    """Worker entry for one tile band referenced inside a shared field."""
    from .workers import compress_band

    return compress_band(codec, np.ascontiguousarray(_view(ref)), eb_abs)


# -- transports -----------------------------------------------------------


@dataclass
class _Envelope:
    """One encoded dispatch: the picklable work plus its lease cleanup."""

    fn: Callable[..., Any]
    args: tuple
    _cleanup: Callable[[], None] | None = None

    def release(self) -> None:
        if self._cleanup is not None:
            cleanup, self._cleanup = self._cleanup, None
            cleanup()


class PickleTransport:
    """Pass-through transport: jobs cross the pool by value.

    The correct choice for ``thread``/``inline`` pools (same address
    space — no copy happens anyway) and the fallback when shared memory
    is unavailable.
    """

    name = "pickle"

    def encode_job(self, job: CompressionJob) -> _Envelope:
        from .workers import run_job

        return _Envelope(fn=run_job, args=(job,))

    def encode_group(self, jobs: Sequence[CompressionJob]) -> _Envelope:
        return _Envelope(fn=run_job_group, args=(list(jobs),))

    def encode_band(
        self, job: CompressionJob, band: np.ndarray, eb_abs: float
    ) -> _Envelope:
        from .workers import compress_band

        return _Envelope(
            fn=compress_band,
            args=(job.codec, np.ascontiguousarray(band), eb_abs),
        )

    def decode_result(self, out: Any) -> Any:
        return out

    def close(self) -> None:
        pass


class ShmTransport:
    """Move fields by :class:`FieldRef`; copy only what must move.

    Small jobs (< ``min_bytes``) still pickle — see :data:`SHM_MIN_BYTES`
    — so the transport is strictly no-worse than pickling at every size.
    """

    name = "shm"

    def __init__(
        self, *, metrics: Any = None, min_bytes: int = SHM_MIN_BYTES,
        arena: ShmArena | None = None,
    ) -> None:
        self.arena = arena if arena is not None else ShmArena(metrics=metrics)
        self.min_bytes = min_bytes
        self._pickle = PickleTransport()

    # -- single job -------------------------------------------------------

    def _field_ref(self, data: np.ndarray) -> tuple[FieldRef, bool]:
        """(ref, owns_lease): adopt a server-ingested view or copy once."""
        adopted = self.arena.ref_of(data)
        if adopted is not None:
            self.arena.lease(adopted.segment)
            return adopted, True
        return self.arena.put_array(data), True

    def encode_job(self, job: CompressionJob) -> _Envelope:
        if job.input_bytes < self.min_bytes:
            return self._pickle.encode_job(job)
        data_ref = payload_ref = None
        if job.op == "compress":
            assert job.data is not None
            data_ref, _ = self._field_ref(job.data)
            segment = data_ref.segment
        else:
            assert job.payload is not None
            payload_ref = self.arena.put_bytes(bytes(job.payload))
            segment = payload_ref.segment
        msg = _JobMessage(
            job_id=job.job_id, codec=job.codec, op=job.op,
            eb=job.eb, mode=job.mode, priority=job.priority,
            deadline_s=job.deadline_s, n_tiles=job.n_tiles,
            data_ref=data_ref, payload_ref=payload_ref,
            out_prefix=self.arena.prefix, out_min_bytes=self.min_bytes,
        )
        return _Envelope(
            fn=run_job_message, args=(msg,),
            _cleanup=lambda: self.arena.release(segment),
        )

    # -- micro-batch ------------------------------------------------------

    def encode_group(self, jobs: Sequence[CompressionJob]) -> _Envelope:
        """Pack every small job of one dispatch into a single segment."""
        sizes = [_round_up(j.input_bytes) for j in jobs]
        total = sum(sizes)
        if total < self.min_bytes:
            return self._pickle.encode_group(jobs)
        name = self.arena.allocate(total)
        msgs = []
        offset = 0
        for job, size in zip(jobs, sizes):
            data_ref = payload_ref = None
            if job.op == "compress":
                assert job.data is not None
                data = np.ascontiguousarray(job.data)
                dst = np.ndarray(
                    data.shape, dtype=data.dtype,
                    buffer=self.arena.buffer(name, data.nbytes, offset),
                )
                dst[...] = data
                data_ref = FieldRef(
                    segment=name, kind="array", nbytes=data.nbytes,
                    offset=offset, dtype=str(data.dtype),
                    shape=tuple(data.shape),
                )
            else:
                assert job.payload is not None
                payload = bytes(job.payload)
                self.arena.buffer(name, len(payload), offset)[:] = payload
                payload_ref = FieldRef(
                    segment=name, kind="bytes", nbytes=len(payload),
                    offset=offset,
                )
            msgs.append(_JobMessage(
                job_id=job.job_id, codec=job.codec, op=job.op,
                eb=job.eb, mode=job.mode, priority=job.priority,
                deadline_s=job.deadline_s, n_tiles=job.n_tiles,
                data_ref=data_ref, payload_ref=payload_ref,
            ))
            offset += size
        return _Envelope(
            fn=run_job_group, args=(msgs,),
            _cleanup=lambda: self.arena.release(name),
        )

    # -- tile bands -------------------------------------------------------

    def encode_band(
        self, job: CompressionJob, band: np.ndarray, eb_abs: float
    ) -> _Envelope:
        """One band of a fanned-out dp job, shipped by reference.

        When the band is a contiguous row-slab of a field the arena
        already holds (the common case: ``plan_bands`` slices axis 0 of
        a C-contiguous array), the ref points into the *existing*
        segment at an offset — the fan-out moves zero bytes.
        """
        if band.nbytes < self.min_bytes:
            return self._pickle.encode_band(job, band, eb_abs)
        parent = (
            self.arena.ref_of(job.data) if job.data is not None else None
        )
        ref = None
        if (
            parent is not None
            and band.flags.c_contiguous
            and job.data is not None
            and job.data.flags.c_contiguous
        ):
            span = np.byte_bounds(band) if hasattr(np, "byte_bounds") else (
                band.__array_interface__["data"][0],
                band.__array_interface__["data"][0] + band.nbytes,
            )
            base = (
                job.data.__array_interface__["data"][0],
                job.data.__array_interface__["data"][0] + job.data.nbytes,
            )
            if base[0] <= span[0] and span[1] <= base[1]:
                self.arena.lease(parent.segment)
                ref = FieldRef(
                    segment=parent.segment, kind="array", nbytes=band.nbytes,
                    offset=parent.offset + (span[0] - base[0]),
                    dtype=str(band.dtype), shape=tuple(band.shape),
                )
        if ref is None:
            ref = self.arena.put_array(band)
        segment = ref.segment
        return _Envelope(
            fn=run_band_message, args=(job.codec, ref, eb_abs),
            _cleanup=lambda: self.arena.release(segment),
        )

    # -- results ----------------------------------------------------------

    def decode_result(self, out: Any) -> Any:
        """Reattach a worker-shipped output (one copy, then unlink)."""
        if not isinstance(out, _ShmResult):
            return out
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=out.ref.segment, track=False)
        except TypeError:
            shm = shared_memory.SharedMemory(name=out.ref.segment)
        try:
            raw = bytes(shm.buf[:out.ref.nbytes])
        finally:
            ShmArena._unlink(shm)
        if out.kind == "array":
            return np.frombuffer(
                raw, dtype=np.dtype(out.ref.dtype)
            ).reshape(out.ref.shape).copy()
        return replace(out.shell, payload=raw)

    def close(self) -> None:
        self.arena.close()


def resolve_transport(
    requested: str, pool_kind: str, *, metrics: Any = None,
) -> PickleTransport | ShmTransport:
    """Pick the transport for a scheduler.

    ``"auto"`` uses shared memory exactly when it pays: a process pool on
    a platform where segments work.  An explicit ``"shm"`` request falls
    back to pickle (transparently, as the in-process pools share an
    address space already) rather than failing — the service must come
    up everywhere.
    """
    if requested not in ("auto", "shm", "pickle"):
        raise ServiceError(
            f"unknown transport {requested!r} (auto | shm | pickle)"
        )
    want_shm = requested in ("auto", "shm")
    if want_shm and pool_kind == "process" and ShmArena.available():
        return ShmTransport(metrics=metrics)
    return PickleTransport()


def _field_fingerprint(data: np.ndarray) -> float:  # pragma: no cover
    """Touch a shared field (bench helper: forces a real page access)."""
    return float(np.asarray(data).ravel()[0])


def touch_ref(ref: FieldRef) -> float:
    """Bench worker: attach a ref and touch its first element."""
    return _field_fingerprint(_view(ref))


def touch_array(data: np.ndarray) -> float:
    """Bench worker: receive a pickled array and touch its first element."""
    return _field_fingerprint(data)
