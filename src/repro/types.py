"""Shared result dataclasses returned by the compressors and models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .config import ErrorBound, QuantizerConfig

__all__ = [
    "CompressedField",
    "CompressionStats",
    "ThroughputReport",
    "ResourceReport",
]


@dataclass(frozen=True)
class CompressionStats:
    """Size accounting for one compressed field.

    All sizes are in bytes.  ``ratio`` is ``original / compressed`` where
    the compressed size includes entropy-coded codes, verbatim outliers and
    (where the variant stores them raw) border points — mirroring the
    artifact's "border points counted as unpredictable data" accounting.
    """

    original_bytes: int
    compressed_bytes: int
    encoded_code_bytes: int
    outlier_bytes: int
    border_bytes: int
    n_points: int
    n_unpredictable: int
    n_border: int

    @property
    def ratio(self) -> float:
        """Compression ratio (original size / compressed size)."""
        return self.original_bytes / self.compressed_bytes

    @property
    def bit_rate(self) -> float:
        """Average output bits per data point."""
        return 8.0 * self.compressed_bytes / self.n_points

    @property
    def unpredictable_fraction(self) -> float:
        return self.n_unpredictable / self.n_points


@dataclass(frozen=True)
class CompressedField:
    """A compressed scientific field: payload plus everything needed to invert it.

    ``payload`` is the serialized container (see :mod:`repro.io.container`);
    ``stats`` carries the size accounting used by the benchmark tables;
    ``meta`` is free-form variant-specific detail (e.g. Huffman table size,
    chosen lossless mode) surfaced in EXPERIMENTS.md.
    """

    variant: str
    shape: tuple[int, ...]
    dtype: str
    bound: ErrorBound
    quant: QuantizerConfig | None  # None for variants without a quantizer (SZ-1.0)
    payload: bytes
    stats: CompressionStats
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ThroughputReport:
    """Modelled throughput of one design point (Table 5 / Figure 8 rows).

    ``mb_per_s`` uses the paper's convention: MB = 1e6 bytes of *input*
    processed per second, float32 points.
    """

    design: str
    dataset: str
    lanes: int
    cycles: float
    frequency_hz: float
    n_points: int
    bytes_per_point: int
    mb_per_s: float
    limited_by: str = "pipeline"

    @property
    def points_per_cycle(self) -> float:
        return self.n_points / self.cycles if self.cycles else float("inf")


@dataclass(frozen=True)
class ResourceReport:
    """FPGA resource utilization of a design (Table 6 rows)."""

    design: str
    bram_18k: int
    dsp48e: int
    ff: int
    lut: int

    def utilization(self, device: "Any") -> dict[str, float]:
        """Percent utilization against a device's totals."""
        return {
            "BRAM_18K": 100.0 * self.bram_18k / device.bram_18k,
            "DSP48E": 100.0 * self.dsp48e / device.dsp48e,
            "FF": 100.0 * self.ff / device.ff,
            "LUT": 100.0 * self.lut / device.lut,
        }
