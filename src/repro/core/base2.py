"""Base-2 operation (paper §3.3, Table 3).

An arbitrary decimal error bound has a 0-1-mixed mantissa in IEEE-754, so
the quantization division needs a full FPU/DSP divide.  Tightening the
bound to the nearest smaller power of two (``1e-3 -> 2**-10``) turns the
division into an exponent subtraction: :func:`quantize_base2_vector` does
exactly Algorithm 1 but with ``ldexp`` scaling (add/subtract in the
exponent field) instead of division, and the FPGA resource model charges
it zero DSP blocks (Table 6's waveSZ DSP48E = 0).
"""

from __future__ import annotations

import math

import numpy as np

from ..config import QuantizerConfig
from ..errors import ConfigError

__all__ = [
    "pow2_tighten",
    "binary_representation",
    "quantize_base2_vector",
    "TABLE3_BASES",
]

#: The decimal bases of paper Table 3.
TABLE3_BASES = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7]


def pow2_tighten(eb: float) -> tuple[float, int]:
    """Nearest power of two <= ``eb``; returns ``(2**k, k)``."""
    if not (eb > 0 and math.isfinite(eb)):
        raise ConfigError(f"error bound must be positive finite, got {eb}")
    k = math.floor(math.log2(eb))
    tightened = math.ldexp(1.0, k)
    if tightened > eb:  # guard against log2 rounding at exact powers
        k -= 1
        tightened = math.ldexp(1.0, k)
    return tightened, k


def binary_representation(x: float, mantissa_bits: int = 13) -> tuple[str, int]:
    """Normalized binary form of ``x`` as ``(mantissa_bits_string, exponent)``.

    ``binary_representation(1e-3)`` returns ``("1.0000011000100", -10)``,
    reproducing the rows of Table 3 (which display 13 mantissa bits of the
    23-bit float32 mantissa).
    """
    if not (x > 0 and math.isfinite(x)):
        raise ConfigError(f"need a positive finite value, got {x}")
    m, e = math.frexp(x)  # x = m * 2**e with m in [0.5, 1)
    m *= 2.0
    e -= 1  # now m in [1, 2)
    bits = []
    frac = m - 1.0
    for _ in range(mantissa_bits):
        frac *= 2.0
        bit = int(frac)
        bits.append(str(bit))
        frac -= bit
    return "1." + "".join(bits), e


def quantize_base2_vector(
    d: np.ndarray,
    pred: np.ndarray,
    exponent: int,
    quant: QuantizerConfig,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 1 with exponent-only scaling: precision is ``2**exponent``.

    Bit-identical to :func:`repro.sz.quantizer.quantize_vector` called with
    ``precision = 2**exponent`` (property-tested); the difference is that
    every multiply/divide by the precision is an ``ldexp`` — the operation
    the FPGA implements with plain integer adders on the exponent field.
    """
    capacity = quant.capacity
    r = quant.radius
    diff = d - pred
    # |diff| / 2**e  ==  ldexp(|diff|, -e): exponent-only arithmetic.
    code0 = np.floor(np.ldexp(np.abs(diff), -exponent)).astype(np.int64) + 1
    quantizable = code0 < capacity
    signed = np.where(diff > 0, code0, -code0)
    code_dot = np.sign(signed) * (np.abs(signed) // 2) + r
    # pred + (code - r) * 2**(e+1)  ==  pred + ldexp(code - r, e+1).
    d_re = (pred + np.ldexp((code_dot - r).astype(np.float64), exponent + 1)).astype(
        out_dtype
    )
    in_bound = np.abs(d_re.astype(np.float64) - d) <= np.ldexp(1.0, exponent)
    ok = quantizable & in_bound & (code_dot > 0) & (code_dot < capacity)
    codes = np.where(ok, code_dot, 0)
    d_out = np.where(ok, d_re, d.astype(out_dtype))
    return codes, d_out
