"""waveSZ-dp: the dual-quant, data-parallel refactor of the waveSZ path.

Where :mod:`repro.core.wavesz` reorganizes the *schedule* of the serial
PQD recurrence (wavefront issue order), this variant removes the
recurrence itself, cuSZ-style: prequantize to the error-bound lattice
first (the one lossy step), then take Lorenzo residuals over the
resulting integers as a pure data-parallel sweep — see
:mod:`repro.sz.dualquant` for the algebra.  Consequences the pipeline
below encodes:

* no wavefront order stage and no border stream — the zero halo makes
  every point predictable, residuals that overflow the quantizer travel
  as verbatim int64 outlier deltas behind code 0;
* decompression is exact integer arithmetic end to end, so a payload is
  bit-exact against this spec (not against classic waveSZ: snapping to
  the lattice *before* prediction yields different — equally bounded —
  reconstructions than quantizing prediction residuals);
* the two phases are separate pipeline stages (``prequant`` /
  ``predict_quant``), so per-stage timing reports them as distinct
  labels instead of one opaque "pqd";
* because no sweep carries a feedback loop, tile bands of one field may
  fan out across a worker pool (``data_parallel=True`` registry flag —
  the scheduler's routing key).

The bound keeps waveSZ's base-2 tightening; PW_REL rides on the shared
SZ-2.0 logarithmic transform stages.  The lossless tail is the customized
Huffman pass over the raster code stream, then gzip where it wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import (
    DualQuantStage,
    DualQuantValuesStage,
    EntropyCodesStage,
    HeaderStage,
    PrequantStage,
    PwRelForwardStage,
    PwRelMasksStage,
    ResolveBoundStage,
    ValidateInputStage,
)
from ..config import QuantizerConfig
from ..lossless import GzipStage, LosslessMode
from ..sz.dualquant import _check_input
from ..variants import Feature

__all__ = ["WaveSZDPCompressor", "WAVESZ_DP_SPEC"]

#: Not a Table 2 row (``table2=None``): the dual-quant decomposition is
#: the cuSZ-style extension of the waveSZ design space, so the spec is
#: documented but not validated against the paper's feature matrix.
WAVESZ_DP_SPEC = PipelineSpec(
    variant="waveSZ-dp",
    table2=None,
    stages=(
        StageSpec("checks"),
        StageSpec("bound", frozenset({Feature.BASE2_MAPPING})),
        StageSpec("pw_rel_log", frozenset({Feature.LOG_TRANSFORM})),
        StageSpec("prequant", frozenset({Feature.QUANTIZATION})),
        StageSpec("predict_quant", frozenset({Feature.LORENZO})),
        StageSpec("header"),
        StageSpec(
            "codes_entropy", frozenset({Feature.CUSTOM_HUFFMAN, Feature.GZIP})
        ),
        StageSpec("values", frozenset({Feature.GZIP})),
        StageSpec("pw_rel_masks"),
    ),
)


class _DPHeaderStage(HeaderStage):
    """waveSZ-dp header: stream counts + dual-quant provenance."""

    def write_extra(self, ctx: PipelineContext) -> None:
        h = ctx.header
        h["dq_version"] = 1
        h["n_outliers"] = int(ctx.require("dq_outlier_deltas").size)
        h["n_raw"] = ctx.require("dq_pre").n_raw
        ctx.meta["backend"] = "dual-quant"
        ctx.meta["phases"] = ["prequant", "predict_quant"]
        ctx.meta["base2_exponent"] = ctx.bound.exponent


@register_codec(
    name="waveSZ-dp",
    aliases=("wavesz-dp",),
    profiles={
        "wavesz-dp-rans": lambda: WaveSZDPCompressor(entropy="rans"),
        "wavesz-dp-auto": lambda: WaveSZDPCompressor(entropy="auto"),
    },
    spec=WAVESZ_DP_SPEC,
    data_parallel=True,
    entropy_backends=("huffman", "rans", "auto"),
)
@dataclass(frozen=True)
class WaveSZDPCompressor(PipelineCompressor):
    """Dual-quant data-parallel PQD under the waveSZ bound conventions.

    Accepts 1D/2D/3D float32/float64 fields of any shape (the zero halo
    needs no minimum dimension).  ``base2=True`` keeps waveSZ's
    power-of-two bound tightening; the guarantee ``|d' - d| <= eb`` holds
    for *every* point by construction — the prequant stage re-checks each
    reconstruction and demotes failures to verbatim raw points.
    """

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    base2: bool = True
    #: ``codes_entropy`` backend (``huffman`` | ``rans`` | ``auto``).  The
    #: dual-quant code stream is where RLE+rANS pays off most: accurately
    #: predicted regions produce long radius runs the pre-pass collapses.
    entropy: str = "huffman"

    name = "waveSZ-dp"
    spec = WAVESZ_DP_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ValidateInputStage(_check_input),
            ResolveBoundStage(base2=self.base2, quant=self.quant),
            PwRelForwardStage(self.lossless),
            PrequantStage(),
            DualQuantStage(),
            _DPHeaderStage(with_quant=True),
            EntropyCodesStage(self.lossless, backend=self.entropy),
            DualQuantValuesStage(self.lossless),
            PwRelMasksStage(self.lossless),
        )
