"""Wavefront-ordered PQD kernel — the Listing 1 transcription.

Two implementations exist on purpose:

* :func:`wavefront_pqd` — a literal, scalar transcription of the paper's
  HLS kernel (Listing 1): head/body/tail double loops over the
  wavefront-transformed stream, with the ``NW/N/W/_gi`` index arithmetic.
  It is the *oracle* the test-suite uses; its per-point order is exactly
  the order the FPGA pipeline issues PQD operations.
* the production path — :func:`repro.sz.pqd.pqd_compress` with verbatim
  borders, plus :func:`wavefront_order_codes` to permute the code stream
  into issue order.  Equality of the two (codes and reconstructions) is
  the "order independence" invariant of DESIGN.md §5.

Note: the paper's printed TailH loop bounds (``for (h=d1-1; h<d1-d0; ...)``)
are typographically garbled (the condition is false on entry); we generate
the tail from the column geometry instead, which matches the head/body
pattern and covers every remaining interior point exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import QuantizerConfig
from ..errors import ShapeError
from ..sz.quantizer import quantize_vector
from .base2 import quantize_base2_vector
from .wavefront import WavefrontLayout, build_layout, to_wavefront

__all__ = [
    "listing1_indices",
    "wavefront_pqd",
    "wavefront_order_codes",
    "WavefrontPQDResult",
]


def listing1_indices(d0: int, d1: int) -> Iterator[tuple[int, int, int, int, int]]:
    """Yield ``(column, NW, N, W, gi)`` stream positions in issue order.

    ``gi`` is the wavefront-stream position of the point being predicted;
    ``NW/N/W`` are the positions of its Lorenzo dependencies.  Columns are
    issued in order; within a column, points go top-to-bottom (ascending
    row), matching the inner vertical loop of Listing 1.
    """
    if d0 < 2 or d1 < 2:
        raise ShapeError(f"kernel needs dims >= 2, got {d0}x{d1}")
    layout = build_layout((d0, d1))
    starts = layout.col_starts

    def i_lo(t: int) -> int:
        return max(0, t - (d1 - 1))

    for t in range(2, layout.n_cols):
        lo_t, lo_1, lo_2 = i_lo(t), i_lo(t - 1), i_lo(t - 2)
        s_t, s_1, s_2 = int(starts[t]), int(starts[t - 1]), int(starts[t - 2])
        i_first = max(1, lo_t)
        i_last = min(d0 - 1, t - 1)  # j = t - i >= 1
        for i in range(i_first, i_last + 1):
            gi = s_t + (i - lo_t)
            n_pos = s_1 + ((i - 1) - lo_1)  # (i-1, j)   on column t-1
            w_pos = s_1 + (i - lo_1)  # (i, j-1)   on column t-1
            nw_pos = s_2 + ((i - 1) - lo_2)  # (i-1, j-1) on column t-2
            yield t, nw_pos, n_pos, w_pos, gi


@dataclass(frozen=True)
class WavefrontPQDResult:
    """Output of the scalar Listing-1 kernel."""

    codes_stream: np.ndarray  # int64, wavefront order (borders = 0)
    decompressed: np.ndarray  # field dtype, raster order
    layout: WavefrontLayout
    issue_order: np.ndarray  # stream positions in the order points issued

    def codes_raster(self) -> np.ndarray:
        """Codes permuted back to the original (raster) layout."""
        out = np.empty_like(self.codes_stream)
        out[:] = self.codes_stream
        raster = np.empty_like(out)
        raster[self.layout.flat_order] = out
        return raster.reshape(self.layout.shape)


def wavefront_pqd(
    data: np.ndarray,
    precision: float,
    quant: QuantizerConfig,
    *,
    base2_exponent: int | None = None,
) -> WavefrontPQDResult:
    """Scalar Listing-1 kernel over the wavefront stream (test oracle).

    Borders (first row/column) are written back verbatim, exactly as
    waveSZ does; unpredictable interior points likewise.  With
    ``base2_exponent`` set, quantization runs the exponent-only path.
    """
    if data.ndim != 2:
        raise ShapeError(f"kernel expects 2D data, got {data.ndim}D")
    dtype = data.dtype
    d0, d1 = data.shape
    wdata, layout = to_wavefront(data)
    work = wdata.astype(np.float64)  # borders already hold exact values
    codes = np.zeros(wdata.size, dtype=np.int64)
    issue = []

    for _, nw, n_, w_, gi in listing1_indices(d0, d1):
        pred = np.array([work[n_] + work[w_] - work[nw]])
        d = np.array([work[gi]])
        if base2_exponent is None:
            c, d_out = quantize_vector(d, pred, precision, quant, dtype)
        else:
            c, d_out = quantize_base2_vector(d, pred, base2_exponent, quant, dtype)
        codes[gi] = c[0]
        work[gi] = float(d_out[0])
        issue.append(gi)

    dec_stream = work.astype(dtype)
    dec = np.empty_like(dec_stream)
    dec[layout.flat_order] = dec_stream
    return WavefrontPQDResult(
        codes_stream=codes,
        decompressed=dec.reshape(d0, d1),
        layout=layout,
        issue_order=np.array(issue, dtype=np.int64),
    )


def wavefront_order_codes(codes: np.ndarray) -> np.ndarray:
    """Permute a raster-order code grid into the hardware issue order."""
    if codes.ndim != 2:
        raise ShapeError(f"expected a 2D code grid, got {codes.ndim}D")
    layout = build_layout(codes.shape)
    return codes.reshape(-1)[layout.flat_order]
