"""PQD hardware stage inventory (consumed by the FPGA timing/resource models).

Latencies are cycles of Xilinx 7-series floating-point operator IPs
configured for maximum frequency (paper §4.1: "IP configuration is set for
the highest frequency when it is possible"), plus the integer/exponent
units the base-2 co-optimization substitutes for them.  The chained PQD
latency Δ these stages sum to is the quantity Figure 6 maps onto the
pipeline depth Λ; the calibrated total (≈118 cycles, see DESIGN.md §3) is
what makes small-Λ datasets (Hurricane, Λ=99) stall and lose ~16 %
throughput in Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HWStage",
    "OP_LATENCY",
    "wavesz_pqd_stages",
    "ghostsz_pqd_stages",
    "pqd_latency",
]

#: Operator latencies in cycles (max-frequency IP configs).
OP_LATENCY = {
    "fadd": 11,  # FP add/sub, logic implementation
    "fmul": 8,
    "fdiv": 28,
    "fcmp": 2,
    "f2i": 6,
    "i2f": 6,
    "int_alu": 1,
    "exp_unit": 2,  # exponent extract/add (base-2 scaling)
    "shift": 1,
    "mux": 1,
    "mem_rw": 2,  # BRAM read or write
}


@dataclass(frozen=True)
class HWStage:
    """One pipeline stage: a named group of chained operators."""

    name: str
    ops: tuple[str, ...]  # operators on the critical path, in order

    @property
    def latency(self) -> int:
        return sum(OP_LATENCY[op] for op in self.ops)


def wavesz_pqd_stages(base2: bool = True) -> tuple[HWStage, ...]:
    """waveSZ's PQD chain: Lorenzo → quantize → reconstruct → write back.

    With ``base2=True`` (the co-optimization) the divide and the overbound
    check disappear: scaling is exponent arithmetic and the power-of-two
    reconstruction is exact by construction (§3.3).
    """
    lorenzo = HWStage("lorenzo_2d", ("mem_rw", "fadd", "fadd"))
    diff = HWStage("diff", ("fadd",))
    if base2:
        quant = HWStage("quantize_base2", ("exp_unit", "int_alu", "shift", "fcmp"))
        recon = HWStage("reconstruct_base2", ("int_alu", "shift", "i2f", "fadd"))
        check: tuple[HWStage, ...] = ()
    else:
        quant = HWStage("quantize_base10", ("fdiv", "f2i", "int_alu", "fcmp"))
        recon = HWStage("reconstruct_base10", ("int_alu", "i2f", "fmul", "fadd"))
        check = (HWStage("overbound_check", ("fadd", "fcmp", "mux")),)
    writeback = HWStage("writeback", ("mux", "mem_rw"))
    return (lorenzo, diff, quant, recon) + check + (writeback,)


def ghostsz_pqd_stages() -> tuple[HWStage, ...]:
    """GhostSZ's chain: 3 curve fits (quadratic dominates) → bestfit →
    base-10 quantize → reconstruct → overbound check → write back."""
    return (
        HWStage("curvefit_quadratic", ("mem_rw", "fmul", "fadd", "fadd")),
        HWStage("bestfit_select", ("fadd", "fcmp", "fcmp", "mux")),
        HWStage("quantize_base10", ("fdiv", "f2i", "int_alu", "fcmp")),
        HWStage("reconstruct_base10", ("int_alu", "i2f", "fmul", "fadd")),
        HWStage("overbound_check", ("fadd", "fcmp", "mux")),
        HWStage("writeback", ("mux", "mem_rw")),
    )


def pqd_latency(stages: tuple[HWStage, ...]) -> int:
    """Chained latency Δ of a PQD pipeline (cycles)."""
    return sum(s.latency for s in stages)
