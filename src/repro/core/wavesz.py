"""waveSZ end-to-end compressor.

The algorithmic content mirrors SZ-1.4 exactly — same Lorenzo predictor,
same linear-scaling quantizer — which is the point of the wavefront layout:
unlike GhostSZ it reorganizes *memory*, not the algorithm, so no ratio is
lost (§3.1).  The differences from SZ-1.4 are the ones the paper lists:

* the error bound is tightened to a power of two (base-2 operation, §3.3),
* 3D fields are interpreted as ``d0 x (d1*d2)`` 2D fields and predicted
  with the 2D Lorenzo stencil (artifact appendix),
* border and unpredictable points are passed *verbatim* to gzip instead of
  truncation analysis (§3.2) and counted as unpredictable data (Table 7),
* the code stream is emitted in wavefront issue order, and the lossless
  stage is the FPGA gzip (G⋆); optionally the customized Huffman pass runs
  first (H⋆G⋆ — Table 7's demonstration rows).

The shared machinery (bound/PQD/header/verbatim packing) comes from
:mod:`repro.codec.stages`; this module keeps only the genuinely
waveSZ-specific stages — the 2D view and the wavefront code ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import (
    HeaderStage,
    PQDStage,
    ResolveBoundStage,
    VerbatimValuesStage,
    gzip_if_smaller,
)
from ..config import QuantizerConfig
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..errors import ContainerError, ShapeError
from ..lossless import GzipStage, LosslessMode
from ..streams import MAX_FIELD_POINTS, header_int, header_shape
from ..variants import Feature
from .wavefront import build_layout

__all__ = ["WaveSZCompressor", "WAVESZ_SPEC"]


def _as_2d(data: np.ndarray) -> np.ndarray:
    """The artifact's 2D interpretation: 3D ``(d0,d1,d2) -> (d0, d1*d2)``."""
    if data.ndim == 2:
        return data
    if data.ndim == 3:
        return data.reshape(data.shape[0], -1)
    if data.ndim == 1:
        raise ShapeError("waveSZ operates on 2D/3D fields (wavefront needs 2 dims)")
    raise ShapeError(f"waveSZ supports 2D/3D fields, got {data.ndim}D")


WAVESZ_SPEC = PipelineSpec(
    variant="waveSZ",
    table2="waveSZ",
    stages=(
        StageSpec("view2d"),
        StageSpec("bound", frozenset({Feature.BASE2_MAPPING})),
        StageSpec(
            "pqd",
            frozenset(
                {
                    Feature.LORENZO,
                    Feature.QUANTIZATION,
                    Feature.DECOMPRESSION_WRITEBACK,
                    Feature.OVERFLOW_CHECK_HW,
                }
            ),
        ),
        StageSpec(
            "wavefront_order", frozenset({Feature.MEMORY_LAYOUT_TRANSFORM})
        ),
        StageSpec("header"),
        StageSpec("codes", frozenset({Feature.CUSTOM_HUFFMAN, Feature.GZIP})),
        StageSpec("values", frozenset({Feature.GZIP})),
    ),
    # hardware-only execution features of the FPGA design
    unmodeled=frozenset({Feature.EXPLICIT_PIPELINING, Feature.LINE_BUFFER}),
)


class _View2DStage:
    """2D interpretation + orientation check, undone after reconstruction."""

    name = "view2d"

    def forward(self, ctx: PipelineContext) -> None:
        view = _as_2d(ctx.data)
        if view.shape[1] < view.shape[0]:
            # Iterate along the longer dimension (Λ = shorter dim - 1); the
            # wavefront transform is symmetric so this is just a transpose.
            raise ShapeError(
                f"waveSZ expects d1 >= d0 after 2D interpretation, got {view.shape}; "
                "transpose the field first"
            )
        ctx.work = view

    def inverse(self, ctx: PipelineContext) -> None:
        ctx.out = ctx.out.reshape(ctx.shape)


class _WavefrontOrderStage:
    """Reorder the code raster into wavefront issue order (§3.1)."""

    name = "wavefront_order"

    def forward(self, ctx: PipelineContext) -> None:
        layout = build_layout(ctx.work.shape)
        ctx.codes = ctx.codes.reshape(-1)[layout.flat_order]

    def inverse(self, ctx: PipelineContext) -> None:
        view_shape = ctx.require("view_shape")
        layout = build_layout(view_shape)
        codes = np.empty(ctx.codes.size, dtype=np.int64)
        codes[layout.flat_order] = ctx.codes
        ctx.codes = codes.reshape(view_shape)


class _WaveHeaderStage(HeaderStage):
    """waveSZ header: view shape, stream counts, backend configuration."""

    def __init__(self, compressor: "WaveSZCompressor") -> None:
        super().__init__(with_quant=True)
        self._c = compressor

    def write_extra(self, ctx: PipelineContext) -> None:
        res = ctx.require("pqd")
        h = ctx.header
        h["view_shape"] = list(ctx.work.shape)
        h["n_border"] = res.n_border
        h["n_outliers"] = res.n_outliers
        h["use_huffman"] = self._c.use_huffman
        h["n_codes"] = int(ctx.codes.size)
        ctx.meta["backend"] = "H*G*" if self._c.use_huffman else "G*"
        ctx.meta["lambda"] = ctx.work.shape[0] - 1
        ctx.meta["base2_exponent"] = ctx.bound.exponent

    def read_extra(self, ctx: PipelineContext) -> None:
        ctx.artifacts["view_shape"] = header_shape(ctx.header, "view_shape")


class _WaveCodesStage:
    """Emit the wavefront code stream: optional Huffman pass, then gzip.

    ``use_huffman`` travels in the header, so decode does not depend on
    the compressor's configuration — a G⋆ instance reads H⋆G⋆ payloads.
    """

    name = "codes"

    def __init__(self, lossless: GzipStage, use_huffman: bool) -> None:
        self.lossless = lossless
        self.use_huffman = use_huffman

    def forward(self, ctx: PipelineContext) -> None:
        container = ctx.container
        codes_stream = ctx.codes
        if self.use_huffman:
            table = HuffmanTable.from_symbols(codes_stream)
            pre_gzip, _ = HuffmanCodec(table).encode(codes_stream)
            container.add("huffman_table", table.to_bytes())
            table_bytes = len(table.to_bytes())
        else:
            pre_gzip = codes_stream.astype("<u2").tobytes()
            table_bytes = 0
        stored, use_gz = gzip_if_smaller(self.lossless, pre_gzip)
        container.header["codes_gzipped"] = use_gz
        container.add("codes", stored)
        ctx.encoded_code_bytes = table_bytes + len(stored)

    def inverse(self, ctx: PipelineContext) -> None:
        container = ctx.container
        h = ctx.header
        view_shape = header_shape(h, "view_shape")
        n_codes = header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
        n_view = 1
        for s in view_shape:
            n_view *= s
        if n_codes != n_view:
            raise ContainerError(
                f"header declares {n_codes} codes for view shape {view_shape}"
            )
        stream = container.get("codes")
        if h["codes_gzipped"]:
            stream = self.lossless.decompress(stream)
        if h["use_huffman"]:
            table, _ = HuffmanTable.from_bytes(container.get("huffman_table"))
            ctx.codes = HuffmanCodec(table).decode(stream, n_codes)
        else:
            ctx.codes = np.frombuffer(stream, dtype="<u2", count=n_codes).astype(
                np.int64
            )


@register_codec(
    name="waveSZ",
    aliases=("wavesz",),
    profiles={"wavesz-g": lambda: WaveSZCompressor(use_huffman=False)},
    table2="waveSZ",
    spec=WAVESZ_SPEC,
    factory=lambda: WaveSZCompressor(use_huffman=True),
)
@dataclass(frozen=True)
class WaveSZCompressor(PipelineCompressor):
    """The paper's contribution, software-functional form.

    ``use_huffman=False`` is the shipped FPGA configuration (G⋆: raw 16-bit
    codes into gzip); ``use_huffman=True`` adds the customized Huffman pass
    (H⋆G⋆), which Table 7 shows recovers SZ-1.4-class ratios.
    """

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    use_huffman: bool = False
    base2: bool = True

    name = "waveSZ"
    spec = WAVESZ_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            _View2DStage(),
            ResolveBoundStage(base2=self.base2, quant=self.quant),
            PQDStage(border="verbatim"),
            _WavefrontOrderStage(),
            _WaveHeaderStage(self),
            _WaveCodesStage(self.lossless, self.use_huffman),
            VerbatimValuesStage(self.lossless),
        )
