"""waveSZ end-to-end compressor.

The algorithmic content mirrors SZ-1.4 exactly — same Lorenzo predictor,
same linear-scaling quantizer — which is the point of the wavefront layout:
unlike GhostSZ it reorganizes *memory*, not the algorithm, so no ratio is
lost (§3.1).  The differences from SZ-1.4 are the ones the paper lists:

* the error bound is tightened to a power of two (base-2 operation, §3.3),
* 3D fields are interpreted as ``d0 x (d1*d2)`` 2D fields and predicted
  with the 2D Lorenzo stencil (artifact appendix),
* border and unpredictable points are passed *verbatim* to gzip instead of
  truncation analysis (§3.2) and counted as unpredictable data (Table 7),
* the code stream is emitted in wavefront issue order, and the lossless
  stage is the FPGA gzip (G⋆); optionally the customized Huffman pass runs
  first (H⋆G⋆ — Table 7's demonstration rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, QuantizerConfig, resolve_error_bound
from ..errors import ContainerError, ShapeError, decode_guard
from ..io.container import Container
from ..lossless import GzipStage, LosslessMode
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    header_dtype,
    header_int,
    header_shape,
    values_to_bytes,
)
from ..types import CompressedField
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from ..sz.pqd import pqd_compress, pqd_decompress
from .wavefront import build_layout

__all__ = ["WaveSZCompressor"]


def _as_2d(data: np.ndarray) -> np.ndarray:
    """The artifact's 2D interpretation: 3D ``(d0,d1,d2) -> (d0, d1*d2)``."""
    if data.ndim == 2:
        return data
    if data.ndim == 3:
        return data.reshape(data.shape[0], -1)
    if data.ndim == 1:
        raise ShapeError("waveSZ operates on 2D/3D fields (wavefront needs 2 dims)")
    raise ShapeError(f"waveSZ supports 2D/3D fields, got {data.ndim}D")


@dataclass(frozen=True)
class WaveSZCompressor:
    """The paper's contribution, software-functional form.

    ``use_huffman=False`` is the shipped FPGA configuration (G⋆: raw 16-bit
    codes into gzip); ``use_huffman=True`` adds the customized Huffman pass
    (H⋆G⋆), which Table 7 shows recovers SZ-1.4-class ratios.
    """

    quant: QuantizerConfig = field(default_factory=QuantizerConfig)
    lossless: GzipStage = field(
        default_factory=lambda: GzipStage(mode=LosslessMode.BEST_SPEED)
    )
    use_huffman: bool = False
    base2: bool = True

    name = "waveSZ"

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        data = np.ascontiguousarray(data)
        view = _as_2d(data)
        if view.shape[1] < view.shape[0]:
            # Iterate along the longer dimension (Λ = shorter dim - 1); the
            # wavefront transform is symmetric so this is just a transpose.
            raise ShapeError(
                f"waveSZ expects d1 >= d0 after 2D interpretation, got {view.shape}; "
                "transpose the field first"
            )
        bound = resolve_error_bound(data, eb, mode, base2=self.base2)
        p = bound.absolute
        res = pqd_compress(view, p, self.quant, border="verbatim")

        layout = build_layout(view.shape)
        codes_stream = res.codes.reshape(-1)[layout.flat_order]

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "view_shape": list(view.shape),
                "bound": bound_to_header(bound),
                "quant_bits": self.quant.bits,
                "reserved_bits": self.quant.reserved_bits,
                "n_border": res.n_border,
                "n_outliers": res.n_outliers,
                "use_huffman": self.use_huffman,
                "n_codes": int(codes_stream.size),
            }
        )

        if self.use_huffman:
            table = HuffmanTable.from_symbols(codes_stream)
            payload, _ = HuffmanCodec(table).encode(codes_stream)
            container.add("huffman_table", table.to_bytes())
            pre_gzip = payload
            table_bytes = len(table.to_bytes())
        else:
            pre_gzip = codes_stream.astype("<u2").tobytes()
            table_bytes = 0

        gz = self.lossless.compress(pre_gzip)
        use_gz = len(gz) < len(pre_gzip)
        container.header["codes_gzipped"] = use_gz
        container.add("codes", gz if use_gz else pre_gzip)
        encoded_code_bytes = table_bytes + (len(gz) if use_gz else len(pre_gzip))

        # Verbatim float streams also pass through the gzip IP on the FPGA
        # (§3.2: unpredictable data goes straight to the lossless stage), so
        # they are stored gzipped when that wins; they still count as
        # unpredictable data in the ratio (Table 7's conservative
        # accounting).
        border_bytes, border_gz = self._pack_verbatim(container, "border",
                                                      res.border_values)
        outlier_bytes, outlier_gz = self._pack_verbatim(container, "outliers",
                                                        res.outlier_values)
        container.header["border_gzipped"] = border_gz
        container.header["outliers_gzipped"] = outlier_gz

        stats = build_stats(
            data=data,
            encoded_code_bytes=encoded_code_bytes,
            outlier_bytes=outlier_bytes,
            border_bytes=border_bytes,
            n_unpredictable=res.n_outliers + res.n_border,
            n_border=res.n_border,
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=self.quant,
            payload=container.to_bytes(),
            stats=stats,
            meta={
                "backend": "H*G*" if self.use_huffman else "G*",
                "lambda": view.shape[0] - 1,
                "base2_exponent": bound.exponent,
            },
        )

    def _pack_verbatim(
        self, container: Container, name: str, values: np.ndarray
    ) -> tuple[int, bool]:
        """Store a verbatim float stream, gzipped when that is smaller.

        Returns (stored_bytes, gzipped?).
        """
        raw = values_to_bytes(values)
        gz = self.lossless.compress(raw) if raw else raw
        use_gz = bool(raw) and len(gz) < len(raw)
        container.add(name, gz if use_gz else raw)
        return (len(gz) if use_gz else len(raw)), use_gz

    def decompress(self, compressed: "CompressedField | bytes") -> np.ndarray:
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        view_shape = header_shape(h, "view_shape")
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        quant = QuantizerConfig(
            bits=header_int(h, "quant_bits", lo=2, hi=32),
            reserved_bits=header_int(h, "reserved_bits"),
        )
        p = bound.absolute
        n_codes = header_int(h, "n_codes", hi=MAX_FIELD_POINTS)
        n_view = 1
        for s in view_shape:
            n_view *= s
        if n_codes != n_view:
            raise ContainerError(
                f"header declares {n_codes} codes for view shape {view_shape}"
            )

        stream = container.get("codes")
        if h["codes_gzipped"]:
            stream = self.lossless.decompress(stream)
        if h["use_huffman"]:
            table, _ = HuffmanTable.from_bytes(container.get("huffman_table"))
            codes_stream = HuffmanCodec(table).decode(stream, n_codes)
        else:
            codes_stream = np.frombuffer(stream, dtype="<u2", count=n_codes).astype(
                np.int64
            )

        layout = build_layout(view_shape)
        codes = np.empty(n_codes, dtype=np.int64)
        codes[layout.flat_order] = codes_stream
        codes = codes.reshape(view_shape)

        lt = np.dtype(dtype).newbyteorder("<")
        border_raw = container.get("border")
        if h.get("border_gzipped"):
            border_raw = self.lossless.decompress(border_raw)
        outlier_raw = container.get("outliers")
        if h.get("outliers_gzipped"):
            outlier_raw = self.lossless.decompress(outlier_raw)
        border_vals = np.frombuffer(
            border_raw, dtype=lt, count=header_int(h, "n_border", hi=MAX_FIELD_POINTS)
        ).astype(dtype)
        outlier_vals = np.frombuffer(
            outlier_raw, dtype=lt, count=header_int(h, "n_outliers", hi=MAX_FIELD_POINTS)
        ).astype(dtype)

        dec = pqd_decompress(
            codes,
            border_vals,
            outlier_vals,
            precision=p,
            quant=quant,
            dtype=dtype,
            border="verbatim",
        )
        return dec.reshape(shape)
