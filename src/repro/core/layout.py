"""Head/body/tail loop partition and the Figure 6 timing algebra.

After the wavefront transform a ``(d0, d1)`` field (``d1 >= d0``) has
``d0 + d1 - 1`` columns.  The pipeline depth is ``Λ = d0 - 1`` (the first
row is pure dependency — paper Listing 1 asserts ``PIPELINE_DEPTH ==
d0-1``).  Columns split into three groups:

* **head** — growing columns (lengths 1..Λ); imperfect loops with stalls,
* **body** — full-length columns (length Λ); the "perfect" loop where the
  iterator's column-switch time Δ maps exactly onto the Λ points and no
  stall occurs,
* **tail** — shrinking columns; imperfect again.

For a body point at row ``r``, column ``c`` (both 0-based here; the paper
uses 1-based rows), the PQD start cycle is ``c*Λ + r`` and the end cycle
``(c+1)*Λ + r - 1`` — one full Δ = Λ after the start.  The next column's
same-row point starts exactly one cycle after that end: pII = 1 with zero
stalls, which :mod:`repro.fpga.timing` verifies by event-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["LoopPartition", "start_cycle", "end_cycle"]


def start_cycle(r: int, c: int, lam: int) -> int:
    """Global start cycle of PQD for body point (row r, column c), 0-based."""
    return c * lam + r


def end_cycle(r: int, c: int, lam: int) -> int:
    """Global end cycle of PQD for body point (row r, column c), 0-based."""
    return (c + 1) * lam + r - 1


@dataclass(frozen=True)
class LoopPartition:
    """The head/body/tail split of the wavefront columns of a 2D field.

    ``d0`` is the shorter (vertical / pipeline) dimension, ``d1`` the
    iteration dimension; ``lam`` is the pipeline depth Λ = d0 - 1.
    """

    d0: int
    d1: int

    def __post_init__(self) -> None:
        if self.d0 < 2 or self.d1 < 2:
            raise ModelError(f"partition needs dims >= 2, got {self.d0}x{self.d1}")
        if self.d1 < self.d0:
            raise ModelError(
                "wavefront partition expects d1 >= d0 (iterate along the longer dim); "
                f"got {self.d0}x{self.d1}"
            )

    @property
    def lam(self) -> int:
        """Pipeline depth Λ (points per full column)."""
        return self.d0 - 1

    @property
    def n_cols(self) -> int:
        return self.d0 + self.d1 - 1

    def column_length(self, t: int) -> int:
        """Number of points in wavefront column ``t`` (including border row)."""
        if not 0 <= t < self.n_cols:
            raise ModelError(f"column {t} out of range [0, {self.n_cols})")
        return min(t, self.d0 - 1, self.d1 - 1, self.d0 + self.d1 - 2 - t) + 1

    def interior_column_length(self, t: int) -> int:
        """Points per column excluding the first-row/column border points.

        These are the PQD iterations the hardware actually runs (Listing 1
        starts at h = 1 and skips the dependency row).
        """
        full = self.column_length(t)
        # Border points on column t: the point with i == 0 exists iff
        # t <= d1-1; the point with j == 0 exists iff t <= d0-1 (and t>0).
        border = 0
        if t <= self.d1 - 1:
            border += 1
        if 0 < t <= self.d0 - 1:
            border += 1
        if t == 0:
            border = 1
        return max(full - border, 0)

    @property
    def head_columns(self) -> range:
        """Growing columns: lengths 1..Λ (imperfect loop)."""
        return range(0, self.d0 - 1)

    @property
    def body_columns(self) -> range:
        """Full columns of length d0 (the perfect, stall-free loop)."""
        return range(self.d0 - 1, self.d1)

    @property
    def tail_columns(self) -> range:
        """Shrinking columns (imperfect loop)."""
        return range(self.d1, self.n_cols)

    def group_of(self, t: int) -> str:
        if t in self.head_columns:
            return "head"
        if t in self.body_columns:
            return "body"
        return "tail"

    def spans(self) -> dict[str, int]:
        """Column counts per group (Figure 6 annotations)."""
        return {
            "head": len(self.head_columns),
            "body": len(self.body_columns),
            "tail": len(self.tail_columns),
        }

    def total_points(self) -> int:
        return self.d0 * self.d1

    def interior_points(self) -> int:
        return (self.d0 - 1) * (self.d1 - 1)

    def border_points(self) -> int:
        return self.total_points() - self.interior_points()
