"""waveSZ — the paper's contribution: wavefront-scheduled, fully pipelined SZ.

* :mod:`repro.core.wavefront` — the wavefront memory-layout transform
  (Figure 5) and its inverse; Manhattan-distance dependency analysis.
* :mod:`repro.core.layout` — head/body/tail loop partition and the Figure 6
  timing algebra (start ``c*Λ + r``, end ``(c+1)*Λ + r - 1``).
* :mod:`repro.core.base2` — power-of-two error bounds and exponent-only
  quantization (Table 3, §3.3).
* :mod:`repro.core.kernel` — the wavefront-ordered PQD kernel and its
  equivalence with raster-order SZ-1.4.
* :mod:`repro.core.wavesz` — the end-to-end waveSZ compressor (G⋆ and
  H⋆G⋆ backends, verbatim borders, 2D interpretation of 3D fields).
* :mod:`repro.core.wavesz_dp` — the dual-quant data-parallel variant
  (waveSZ-dp): prequantize first, then wavefront-free integer Lorenzo.
* :mod:`repro.core.pipeline` — the PQD hardware stage inventory consumed
  by the FPGA timing/resource models.
"""

from .base2 import binary_representation, pow2_tighten, quantize_base2_vector
from .kernel import wavefront_order_codes, wavefront_pqd
from .layout import LoopPartition, end_cycle, start_cycle
from .wavefront import WavefrontLayout, from_wavefront, to_wavefront
from .wavesz import WaveSZCompressor
from .wavesz_dp import WaveSZDPCompressor

__all__ = [
    "binary_representation",
    "pow2_tighten",
    "quantize_base2_vector",
    "wavefront_order_codes",
    "wavefront_pqd",
    "LoopPartition",
    "start_cycle",
    "end_cycle",
    "WavefrontLayout",
    "to_wavefront",
    "from_wavefront",
    "WaveSZCompressor",
    "WaveSZDPCompressor",
]
