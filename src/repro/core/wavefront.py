"""The wavefront memory layout (paper §3.1, Figure 5).

Preprocessing on the host CPU reorganizes a 2D field so that all points
with the same Manhattan distance from the pivot ``(0,0)`` land in the same
*column* of the new layout.  Points within a column are mutually
independent under the Lorenzo stencil, so the FPGA can stream down each
column with initiation interval 1 and no stalls.

:class:`WavefrontLayout` captures the bijection; :func:`to_wavefront` /
:func:`from_wavefront` apply it.  The layout is pure index bookkeeping —
``from_wavefront(to_wavefront(x)) == x`` exactly — which is why waveSZ
keeps SZ-1.4's compression ratio (unlike GhostSZ's decorrelation).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ShapeError

__all__ = ["WavefrontLayout", "to_wavefront", "from_wavefront"]


@dataclass(frozen=True)
class WavefrontLayout:
    """Index map of the wavefront transform for a ``(d0, d1)`` field.

    ``flat_order`` lists the C-order flat indices of the original array in
    wavefront order (column 0 first, each column top-to-bottom, i.e. by
    increasing row index ``i``).  ``col_starts`` marks where each of the
    ``d0 + d1 - 1`` columns begins in ``flat_order``.
    """

    shape: tuple[int, int]
    flat_order: np.ndarray  # int64, permutation of arange(d0*d1)
    col_starts: np.ndarray  # int64, length n_cols + 1

    @property
    def n_cols(self) -> int:
        return self.col_starts.size - 1

    def column(self, t: int) -> np.ndarray:
        """Flat original-array indices of wavefront column ``t``."""
        return self.flat_order[self.col_starts[t] : self.col_starts[t + 1]]

    def column_length(self, t: int) -> int:
        return int(self.col_starts[t + 1] - self.col_starts[t])

    def inverse(self) -> np.ndarray:
        """Permutation sending wavefront position -> original flat index...

        ...inverted: ``inv[flat_order] = arange(n)`` so that
        ``wavefront_values[inv]`` restores raster order.
        """
        inv = np.empty_like(self.flat_order)
        inv[self.flat_order] = np.arange(self.flat_order.size, dtype=np.int64)
        return inv


@lru_cache(maxsize=32)
def build_layout(shape: tuple[int, int]) -> WavefrontLayout:
    """Construct (and cache) the wavefront layout for a 2D shape."""
    if len(shape) != 2:
        raise ShapeError(f"wavefront layout is defined for 2D shapes, got {shape}")
    d0, d1 = shape
    if d0 < 1 or d1 < 1:
        raise ShapeError(f"degenerate shape {shape}")
    n_cols = d0 + d1 - 1
    cols: list[np.ndarray] = []
    starts = np.zeros(n_cols + 1, dtype=np.int64)
    for t in range(n_cols):
        i_lo = max(0, t - (d1 - 1))
        i_hi = min(d0 - 1, t)
        i = np.arange(i_lo, i_hi + 1, dtype=np.int64)
        cols.append(i * d1 + (t - i))
        starts[t + 1] = starts[t] + i.size
    return WavefrontLayout(
        shape=(d0, d1),
        flat_order=np.concatenate(cols),
        col_starts=starts,
    )


def to_wavefront(data: np.ndarray) -> tuple[np.ndarray, WavefrontLayout]:
    """Apply the wavefront preprocessing (host-side memory copy, Figure 7).

    Returns the 1D wavefront-ordered value stream and the layout needed to
    invert it.
    """
    if data.ndim != 2:
        raise ShapeError(f"wavefront transform expects 2D data, got {data.ndim}D")
    layout = build_layout(data.shape)
    return data.reshape(-1)[layout.flat_order], layout


def from_wavefront(stream: np.ndarray, layout: WavefrontLayout) -> np.ndarray:
    """Invert :func:`to_wavefront`."""
    if stream.size != layout.flat_order.size:
        raise ShapeError(
            f"stream has {stream.size} values, layout expects {layout.flat_order.size}"
        )
    out = np.empty_like(stream)
    out[layout.flat_order] = stream
    return out.reshape(layout.shape)
