"""Compressor configuration: error-bound modes and quantizer settings.

SZ variants are parameterised by

* an *error-bound mode* — absolute (``ABS``), value-range relative
  (``VR_REL``, the paper's ``-M REL``), or pointwise relative (``PW_REL``,
  SZ-2.0's logarithmic-transform mode), and
* a *quantizer configuration* — the number of linear-scaling quantization
  bins (SZ-1.4 default ``2**16``) and the radius used to centre the signed
  codes.

waveSZ additionally tightens the resolved bound to the nearest smaller
power of two (``base2=True``) so quantization becomes an exponent-only
operation (paper §3.3, Table 3).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigError

__all__ = [
    "ErrorBoundMode",
    "QuantizerConfig",
    "ErrorBound",
    "resolve_error_bound",
    "DEFAULT_QUANT_BITS",
]

#: SZ-1.4 default: 16-bit quantization codes (65,536 bins).
DEFAULT_QUANT_BITS = 16


class ErrorBoundMode(enum.Enum):
    """How the user-set bound is interpreted.

    ABS
        ``eb`` is the absolute bound directly.
    VR_REL
        ``eb`` is relative to the data value range ``max - min`` (the
        paper's evaluation uses ``VR_REL = 1e-3`` throughout).
    PW_REL
        ``eb`` is pointwise-relative; implemented via the SZ-2.0
        logarithmic preprocessing transform, after which it reduces to an
        ABS bound in log space.
    """

    ABS = "abs"
    VR_REL = "vr_rel"
    PW_REL = "pw_rel"


@dataclass(frozen=True)
class QuantizerConfig:
    """Linear-scaling quantizer parameters (Algorithm 1).

    Attributes
    ----------
    bits:
        Width of a quantization code in bits.  The number of representable
        bins is ``2**bits``; code 0 is reserved for unpredictable points.
    reserved_bits:
        Bits stolen from the code for side information.  GhostSZ spends 2
        bits encoding which of the Order-{0,1,2} fits was chosen, leaving
        only ``2**(bits-2)`` usable bins (paper §4.1).
    """

    bits: int = DEFAULT_QUANT_BITS
    reserved_bits: int = 0

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ConfigError(f"quantizer bits must be in [2, 32], got {self.bits}")
        if not 0 <= self.reserved_bits < self.bits - 1:
            raise ConfigError(
                f"reserved_bits must be in [0, bits-1), got {self.reserved_bits}"
            )

    @property
    def capacity(self) -> int:
        """Maximum quantizable code magnitude (number of usable bins)."""
        return 1 << (self.bits - self.reserved_bits)

    @property
    def radius(self) -> int:
        """Centre offset ``r`` added to signed codes so they are non-negative."""
        return self.capacity >> 1


@dataclass(frozen=True)
class ErrorBound:
    """A user-set error bound plus its resolution against a dataset.

    ``value`` is the raw user number (e.g. ``1e-3``); ``absolute`` is the
    resolved absolute bound actually enforced on each data point.  When
    ``base2`` is set the absolute bound has been tightened to a power of
    two and ``exponent`` holds ``log2(absolute)``.
    """

    mode: ErrorBoundMode
    value: float
    absolute: float
    base2: bool = False
    exponent: int | None = None

    def __post_init__(self) -> None:
        if not (self.value > 0 and math.isfinite(self.value)):
            raise ConfigError(f"error bound must be positive finite, got {self.value}")
        if not (self.absolute > 0 and math.isfinite(self.absolute)):
            raise ConfigError(
                f"resolved absolute bound must be positive finite, got {self.absolute}"
            )
        if self.base2:
            if self.exponent is None:
                raise ConfigError("base2 bound requires an exponent")
            if self.absolute != math.ldexp(1.0, self.exponent):
                raise ConfigError(
                    f"base2 bound {self.absolute} is not 2**{self.exponent}"
                )


def resolve_error_bound(
    data: np.ndarray,
    value: float,
    mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    *,
    base2: bool = False,
) -> ErrorBound:
    """Resolve a user-set bound into an absolute per-point bound.

    For ``VR_REL`` the bound is ``value * (max(data) - min(data))``; a field
    that is exactly constant resolves against a range of 1.0 so the bound
    stays positive (any positive bound compresses a constant field exactly
    anyway).  With ``base2=True`` the resolved bound is tightened to the
    nearest smaller-or-equal power of two, matching waveSZ's exponent-only
    arithmetic (e.g. VR-REL 1e-3 on a unit-range field -> 2**-10).
    """
    if isinstance(mode, str):
        try:
            mode = ErrorBoundMode(mode)
        except ValueError as exc:
            raise ConfigError(f"unknown error bound mode: {mode!r}") from exc
    if not (value > 0 and math.isfinite(value)):
        raise ConfigError(f"error bound must be positive finite, got {value}")

    if mode is ErrorBoundMode.ABS:
        absolute = float(value)
    elif mode is ErrorBoundMode.VR_REL:
        lo = float(np.min(data))
        hi = float(np.max(data))
        vrange = hi - lo
        if not math.isfinite(vrange):
            raise ConfigError("data contains non-finite values; cannot resolve VR_REL")
        absolute = value * (vrange if vrange > 0 else 1.0)
    elif mode is ErrorBoundMode.PW_REL:
        # After the log2 transform, |log2 d - log2 d'| <= log2(1+eb) bounds
        # the relative error by eb; a small margin absorbs the dtype
        # rounding of the transformed values (repro.sz.preprocess).
        if not value < 1:
            raise ConfigError(f"PW_REL bound must be < 1, got {value}")
        absolute = math.log2(1.0 + float(value)) - 2.0**-16
        if absolute <= 0:
            raise ConfigError(f"PW_REL bound {value} too tight for float32")
    else:  # pragma: no cover - enum is closed
        raise ConfigError(f"unhandled mode {mode}")

    if not base2:
        return ErrorBound(mode=mode, value=float(value), absolute=absolute)

    exponent = math.floor(math.log2(absolute))
    tightened = math.ldexp(1.0, exponent)
    # Guard against floor/ldexp landing above the target due to rounding.
    if tightened > absolute:
        exponent -= 1
        tightened = math.ldexp(1.0, exponent)
    return ErrorBound(
        mode=mode,
        value=float(value),
        absolute=tightened,
        base2=True,
        exponent=exponent,
    )
