"""Entropy-coding substrate: bit-level IO and the customized Huffman coder.

SZ's "customized variable-length encoding" (paper §2.1 step 4) is a canonical
Huffman code over 16-bit linear-scaling quantization codes.  This package
implements it from scratch:

* :mod:`repro.encoding.bitio` — MSB-first bit writer/reader with a
  vectorized multi-symbol pack path and a buffered decode path.
* :mod:`repro.encoding.histogram` — symbol frequency and entropy helpers.
* :mod:`repro.encoding.huffman` — canonical Huffman table construction,
  serialization, vectorized encode, table-accelerated decode.
"""

from .bitio import BitReader, BitWriter, pack_codes
from .histogram import entropy_bits, symbol_histogram
from .huffman import HuffmanCodec, HuffmanTable

__all__ = [
    "BitReader",
    "BitWriter",
    "pack_codes",
    "entropy_bits",
    "symbol_histogram",
    "HuffmanCodec",
    "HuffmanTable",
]
