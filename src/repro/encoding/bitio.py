"""MSB-first bit-level IO.

Two write paths exist:

* :class:`BitWriter` — scalar, for headers and small variable-length fields.
* :func:`pack_codes` — vectorized NumPy path that packs an array of
  (code, bit-length) pairs in one shot; this is what the Huffman encoder
  uses so that encoding a multi-megapoint field stays at NumPy speed
  (per the HPC guide: vectorize the hot loop, profile the rest).

Reading is handled by :class:`BitReader`, which maintains a 64-bit refill
buffer so that per-symbol Huffman decode needs only integer ops.
"""

from __future__ import annotations

import numpy as np

from ..errors import BitstreamError
from ..kernels.dispatch import register_kernel, resolve

__all__ = ["BitWriter", "BitReader", "pack_codes", "unpack_codes"]

_MAX_CODE_BITS = 57  # leaves refill headroom in a 64-bit buffer
_MAX_READ_BITS = 4096  # widest multi-word read any header field can need


class BitWriter:
    """Accumulates bits MSB-first into a growable byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0  # pending bits, left-aligned within _nacc
        self._nacc = 0

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._bytes) + self._nacc

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, most-significant bit first."""
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >> nbits:
            raise BitstreamError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        while self._nacc >= 8:
            self._nacc -= 8
            self._bytes.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (stream must be byte-aligned)."""
        if self._nacc:
            raise BitstreamError("write_bytes on unaligned stream")
        self._bytes.extend(data)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._nacc:
            self._bytes.append((self._acc << (8 - self._nacc)) & 0xFF)
            self._acc = 0
            self._nacc = 0

    def getvalue(self) -> bytes:
        """Return the byte-aligned contents (pads a trailing partial byte)."""
        self.align()
        return bytes(self._bytes)


class BitReader:
    """Reads an MSB-first bitstream with a 64-bit refill buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # next byte index to refill from
        self._buf = 0  # right-aligned pending bits
        self._nbuf = 0

    @property
    def bits_consumed(self) -> int:
        return 8 * self._pos - self._nbuf

    @property
    def bits_remaining(self) -> int:
        return 8 * len(self._data) - self.bits_consumed

    def _refill(self, need: int) -> None:
        while self._nbuf < need:
            if self._pos >= len(self._data):
                raise BitstreamError(
                    f"bitstream exhausted: need {need} bits, have {self._nbuf}"
                )
            self._buf = (self._buf << 8) | self._data[self._pos]
            self._pos += 1
            self._nbuf += 8

    def read(self, nbits: int) -> int:
        """Consume and return ``nbits`` as an unsigned integer."""
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        if nbits == 0:
            return 0
        if nbits > _MAX_READ_BITS:
            # A width this large only arises from a corrupt header; fail
            # loudly instead of recursing toward a RecursionError.
            raise BitstreamError(f"implausible read of {nbits} bits")
        if nbits > _MAX_CODE_BITS:
            # Split long reads; headers never exceed 57 bits in practice.
            hi = self.read(nbits - 32)
            return (hi << 32) | self.read(32)
        self._refill(nbits)
        self._nbuf -= nbits
        value = (self._buf >> self._nbuf) & ((1 << nbits) - 1)
        self._buf &= (1 << self._nbuf) - 1
        return value

    def peek(self, nbits: int) -> int:
        """Return the next ``nbits`` without consuming; zero-pads past the end."""
        if nbits > _MAX_CODE_BITS:
            raise BitstreamError(f"peek of {nbits} bits exceeds buffer width")
        avail = self.bits_remaining
        if avail >= nbits:
            self._refill(nbits)
            return (self._buf >> (self._nbuf - nbits)) & ((1 << nbits) - 1)
        if avail > 0:
            self._refill(avail)
        return (self._buf << (nbits - self._nbuf)) & ((1 << nbits) - 1)

    def skip(self, nbits: int) -> None:
        """Consume ``nbits`` previously peeked."""
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        self._refill(nbits)
        self._nbuf -= nbits
        self._buf &= (1 << self._nbuf) - 1

    def align(self) -> None:
        """Discard bits up to the next byte boundary."""
        self._nbuf -= self._nbuf % 8
        self._buf &= (1 << self._nbuf) - 1

    def read_bytes(self, n: int) -> bytes:
        """Read whole bytes (stream must be byte-aligned)."""
        if self._nbuf % 8:
            raise BitstreamError("read_bytes on unaligned stream")
        out = bytearray()
        while self._nbuf >= 8 and n > 0:
            self._nbuf -= 8
            out.append((self._buf >> self._nbuf) & 0xFF)
            n -= 1
        self._buf &= (1 << self._nbuf) - 1
        if n > 0:
            if self._pos + n > len(self._data):
                raise BitstreamError("bitstream exhausted in read_bytes")
            out.extend(self._data[self._pos : self._pos + n])
            self._pos += n
        return bytes(out)


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Vectorized MSB-first packing of per-symbol (code, length) pairs.

    Returns ``(packed_bytes, total_bits)``.  Bit ``k`` (0-based, MSB-first)
    of each symbol's code is ``(code >> (length-1-k)) & 1``.  The packing
    itself goes through the ``bitio.pack_codes`` kernel: the reference
    expands to a flat bit array with ``repeat``/``cumsum`` index
    arithmetic and a single :func:`numpy.packbits` call; the fast path
    (:func:`repro.kernels.bitpack_fast.pack_codes_windowed`) produces
    the identical bytes by summing per-byte window contributions with
    ``bincount``, using far less time and scratch memory.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise BitstreamError("codes and lengths must have the same shape")
    if codes.ndim != 1:
        raise BitstreamError("pack_codes expects 1-D arrays")
    if lengths.size == 0:
        return b"", 0
    if (lengths <= 0).any() or (lengths > _MAX_CODE_BITS).any():
        raise BitstreamError("code lengths must be in [1, 57]")
    return resolve("bitio.pack_codes")(codes, lengths)


def _pack_codes_reference(
    codes: np.ndarray, lengths: np.ndarray
) -> tuple[bytes, int]:
    total_bits = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    # For every output bit: which symbol it belongs to and its index k
    # within that symbol's code.
    sym_of_bit = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    k = np.arange(total_bits, dtype=np.int64) - np.repeat(starts, lengths)
    shift = (lengths[sym_of_bit] - 1 - k).astype(np.uint64)
    bits = ((codes[sym_of_bit] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes(), total_bits


def unpack_codes(payload: bytes, widths: np.ndarray) -> np.ndarray:
    """Read consecutive MSB-first fields of the given bit ``widths``.

    The inverse of :func:`pack_codes` for known per-value widths: returns
    an ``int64`` array with one value per width.  Raises
    :class:`BitstreamError` if the fields overrun the payload.  Trailing
    payload bits beyond the last field are ignored, mirroring a partial
    :class:`BitReader` scan.
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.ndim != 1:
        raise BitstreamError("unpack_codes expects a 1-D width array")
    if widths.size == 0:
        return np.empty(0, dtype=np.int64)
    if (widths <= 0).any() or (widths > _MAX_CODE_BITS).any():
        raise BitstreamError("field widths must be in [1, 57]")
    return resolve("bitio.unpack_codes")(payload, widths)


def _unpack_codes_reference(payload: bytes, widths: np.ndarray) -> np.ndarray:
    reader = BitReader(payload)
    out = np.empty(widths.size, dtype=np.int64)
    for j in range(widths.size):
        out[j] = reader.read(int(widths[j]))
    return out


register_kernel(
    "bitio.pack_codes",
    _pack_codes_reference,
    fast="repro.kernels.bitpack_fast:pack_codes_windowed",
)
register_kernel(
    "bitio.unpack_codes",
    _unpack_codes_reference,
    fast="repro.kernels.bitpack_fast:unpack_codes_windowed",
)
