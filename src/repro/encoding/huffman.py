"""Customized canonical Huffman coding over quantization codes.

SZ-1.4's "customized variable-length encoding" is a Huffman code whose
alphabet is the 16-bit linear-scaling quantization codes (paper §2.1,
Table 7's H⋆ stage).  This module implements it from scratch:

* tree construction with a binary heap over the non-zero-frequency symbols,
* canonicalization (codes assigned in (length, symbol) order) so the table
  serializes as just *lengths + symbols in canonical order*,
* a fully vectorized encoder built on :func:`repro.encoding.bitio.pack_codes`,
* a decoder with a 12-bit first-level lookup table and a canonical
  per-length fallback for longer codes.

Maximum code depth for an alphabet with integer counts is bounded by the
Fibonacci growth of subtree weights; exceeding 57 levels would require more
than 2**57 input symbols, so depths always fit the bit-IO buffer.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from ..errors import HuffmanError
from ..kernels.dispatch import register_kernel, resolve
from .bitio import BitReader, pack_codes
from .histogram import symbol_histogram

__all__ = ["HuffmanTable", "HuffmanCodec"]

_FAST_BITS = 12
_MAGIC = b"HUF1"
_MAX_TABLE_DEPTH = 57  # matches the bit-IO buffer headroom
_MAX_ENC_ALPHABET = 1 << 26  # dense encode-table slots (plenty for 16-bit codes)


def _code_lengths(counts: np.ndarray) -> np.ndarray:
    """Huffman code length per (non-zero-count) symbol, by heap merging."""
    n = counts.size
    if n == 1:
        return np.array([1], dtype=np.int64)
    # Heap entries: (weight, tiebreak, node_id). Internal nodes get ids >= n;
    # parent[] lets us recover each leaf's depth after the merge.
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    heap = [(int(c), i, i) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    next_id = n
    while len(heap) > 1:
        w1, _, a = heapq.heappop(heap)
        w2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (w1 + w2, next_id, next_id))
        next_id += 1
    depths = np.zeros(n, dtype=np.int64)
    for leaf in range(n):
        d = 0
        node = leaf
        while parent[node] != -1:
            node = parent[node]
            d += 1
        depths[leaf] = d
    return depths


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code: symbols in canonical order and their lengths.

    ``symbols[i]`` is the i-th symbol in (length, symbol) canonical order;
    ``lengths[i]`` its code length.  Codes are implied: within each length,
    codes are consecutive, starting from ``(prev_first + prev_count) << 1``.
    """

    symbols: np.ndarray  # int64, canonical order
    lengths: np.ndarray  # int64, non-decreasing

    def __post_init__(self) -> None:
        if self.symbols.shape != self.lengths.shape or self.symbols.ndim != 1:
            raise HuffmanError("symbols/lengths must be matching 1-D arrays")
        if self.symbols.size and (np.diff(self.lengths) < 0).any():
            raise HuffmanError("lengths must be non-decreasing (canonical order)")

    @classmethod
    def from_frequencies(
        cls, values: np.ndarray, counts: np.ndarray
    ) -> "HuffmanTable":
        """Build the canonical table for an empirical distribution."""
        values = np.asarray(values, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if values.size == 0:
            return cls(np.empty(0, np.int64), np.empty(0, np.int64))
        if (counts <= 0).any():
            raise HuffmanError("all counts must be positive")
        lengths = _code_lengths(counts)
        order = np.lexsort((values, lengths))
        return cls(values[order], lengths[order])

    @classmethod
    def from_symbols(cls, symbols: np.ndarray) -> "HuffmanTable":
        """Build the table directly from a symbol stream."""
        return cls.from_frequencies(*symbol_histogram(symbols))

    # -- canonical code assignment -------------------------------------

    def assign_codes(self) -> np.ndarray:
        """Return the canonical code value for each table entry (uint64)."""
        n = self.symbols.size
        codes = np.zeros(n, dtype=np.uint64)
        if n == 0:
            return codes
        code = 0
        prev_len = int(self.lengths[0])
        for i in range(n):
            li = int(self.lengths[i])
            code <<= li - prev_len
            codes[i] = code
            code += 1
            prev_len = li
        return codes

    def is_prefix_free_and_complete(self) -> bool:
        """Kraft sum == 1 exactly (true for any Huffman code with >= 1 symbol)."""
        if self.symbols.size == 0:
            return True
        if self.symbols.size == 1:
            return int(self.lengths[0]) == 1  # single-symbol convention
        kraft = np.sum(np.ldexp(1.0, -self.lengths.astype(np.int64)))
        return bool(abs(kraft - 1.0) < 1e-12)

    @property
    def max_length(self) -> int:
        return int(self.lengths[-1]) if self.symbols.size else 0

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact serialization: per-length symbol counts + canonical symbols."""
        out = bytearray(_MAGIC)
        n = self.symbols.size
        out += struct.pack("<I", n)
        if n == 0:
            return bytes(out)
        maxlen = self.max_length
        out += struct.pack("<B", maxlen)
        per_len = np.bincount(self.lengths, minlength=maxlen + 1)[1:]
        out += per_len.astype("<u4").tobytes()
        out += self.symbols.astype("<u4").tobytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["HuffmanTable", int]:
        """Parse a serialized table; returns (table, bytes_consumed).

        Every length and count is bounds-checked against the buffer before
        it is trusted, so truncated or bit-flipped tables raise
        :class:`HuffmanError` rather than ``struct.error``/``ValueError``
        — and can never describe an over-subscribed (ambiguous) code.
        """
        if len(data) < 8:
            raise HuffmanError("truncated Huffman table header")
        if data[:4] != _MAGIC:
            raise HuffmanError("bad Huffman table magic")
        (n,) = struct.unpack_from("<I", data, 4)
        pos = 8
        if n == 0:
            return cls(np.empty(0, np.int64), np.empty(0, np.int64)), pos
        if len(data) < pos + 1:
            raise HuffmanError("truncated Huffman table: missing max length")
        (maxlen,) = struct.unpack_from("<B", data, pos)
        pos += 1
        if not 1 <= maxlen <= _MAX_TABLE_DEPTH:
            raise HuffmanError(f"implausible Huffman code depth {maxlen}")
        if len(data) < pos + 4 * maxlen + 4 * n:
            raise HuffmanError("truncated Huffman table body")
        per_len = np.frombuffer(data, dtype="<u4", count=maxlen, offset=pos)
        pos += 4 * maxlen
        if int(per_len.sum()) != n:
            raise HuffmanError("corrupt Huffman table: count mismatch")
        # Kraft over-subscription would make canonical codes overlap and
        # decoding ambiguous; reject it outright.
        kraft = int(
            (per_len.astype(object) * [2 ** (maxlen - l) for l in range(1, maxlen + 1)]).sum()
        )
        if kraft > 2**maxlen:
            raise HuffmanError("corrupt Huffman table: over-subscribed code")
        symbols = np.frombuffer(data, dtype="<u4", count=n, offset=pos).astype(
            np.int64
        )
        pos += 4 * n
        lengths = np.repeat(
            np.arange(1, maxlen + 1, dtype=np.int64), per_len.astype(np.int64)
        )
        return cls(symbols, lengths), pos


class HuffmanCodec:
    """Encode/decode symbol streams against a :class:`HuffmanTable`."""

    def __init__(self, table: HuffmanTable) -> None:
        self.table = table
        self._codes = table.assign_codes()
        # Dense symbol -> (code, length) encode lookups are built lazily:
        # a decode-only codec over a corrupt table claiming symbol 2**32-1
        # must not allocate a multi-gigabyte array it will never use.
        self._enc_len: np.ndarray | None = None
        self._enc_code: np.ndarray | None = None
        self._build_decode_tables()

    def _encode_tables(self) -> tuple[np.ndarray, np.ndarray]:
        if self._enc_len is None:
            table = self.table
            n = table.symbols.size
            if n:
                hi = int(table.symbols.max()) + 1
                if hi > _MAX_ENC_ALPHABET:
                    raise HuffmanError(
                        f"encode alphabet too large ({hi} dense slots)"
                    )
                self._enc_len = np.zeros(hi, dtype=np.int64)
                self._enc_code = np.zeros(hi, dtype=np.uint64)
                self._enc_len[table.symbols] = table.lengths
                self._enc_code[table.symbols] = self._codes
            else:
                self._enc_len = np.zeros(0, dtype=np.int64)
                self._enc_code = np.zeros(0, dtype=np.uint64)
        return self._enc_len, self._enc_code

    def _build_decode_tables(self) -> None:
        t = self.table
        maxlen = t.max_length
        fast_bits = min(_FAST_BITS, max(maxlen, 1))
        fast_sym = np.full(1 << fast_bits, -1, dtype=np.int64)
        fast_len = np.zeros(1 << fast_bits, dtype=np.int64)
        # Canonical per-length bounds for the slow path.
        first_code = np.zeros(maxlen + 2, dtype=np.int64)
        first_idx = np.zeros(maxlen + 2, dtype=np.int64)
        count = np.bincount(t.lengths, minlength=maxlen + 2) if t.symbols.size else (
            np.zeros(maxlen + 2, dtype=np.int64)
        )
        code = 0
        idx = 0
        for length in range(1, maxlen + 1):
            first_code[length] = code
            first_idx[length] = idx
            c = int(count[length]) if length < len(count) else 0
            if length <= fast_bits and c:
                # Fill all fast-table slots whose top `length` bits match.
                span = 1 << (fast_bits - length)
                for j in range(c):
                    base = (code + j) << (fast_bits - length)
                    fast_sym[base : base + span] = t.symbols[idx + j]
                    fast_len[base : base + span] = length
            code = (code + c) << 1
            idx += c
        self._fast_bits = fast_bits
        self._fast_sym = fast_sym
        self._fast_len = fast_len
        self._first_code = first_code
        self._first_idx = first_idx
        self._len_count = count
        # Fused (symbol << 6) | length entry per fast-table slot, -1 on
        # escape — the chain-walk kernel gathers these in one shot.
        self._fast_entry = np.where(
            fast_sym >= 0, (fast_sym << 6) | fast_len, np.int64(-1)
        )

    # -- encode ------------------------------------------------------------

    def encode(self, symbols: np.ndarray) -> tuple[bytes, int]:
        """Encode a 1-D symbol array; returns (payload, total_bits)."""
        symbols = np.asarray(symbols).reshape(-1)
        if symbols.size == 0:
            return b"", 0
        enc_len, enc_code = self._encode_tables()
        if symbols.min() < 0 or symbols.max() >= enc_len.size:
            raise HuffmanError("symbol outside table alphabet")
        lengths = enc_len[symbols]
        if (lengths == 0).any():
            raise HuffmanError("symbol with zero frequency in table")
        return pack_codes(enc_code[symbols], lengths)

    # -- decode ------------------------------------------------------------

    def decode(self, payload: bytes, n_symbols: int) -> np.ndarray:
        """Decode ``n_symbols`` symbols from an MSB-first payload.

        ``n_symbols`` is validated against the payload size before any
        allocation: each symbol consumes at least ``lengths[0]`` bits, so a
        mutated count that the payload cannot possibly satisfy raises
        instead of decoding padding into unbounded garbage.
        """
        if n_symbols == 0:
            return np.empty(0, dtype=np.int64)
        if n_symbols < 0:
            raise HuffmanError(f"negative symbol count {n_symbols}")
        if self.table.symbols.size == 0:
            raise HuffmanError("cannot decode with an empty table")
        min_len = int(self.table.lengths[0])
        if n_symbols * min_len > 8 * len(payload):
            raise HuffmanError(
                f"payload too short for {n_symbols} symbols "
                f"(min {min_len} bits each, {8 * len(payload)} bits available)"
            )
        if self.table.symbols.size == 1:
            # Degenerate single-symbol stream: 1 bit per symbol by convention.
            out = np.empty(n_symbols, dtype=np.int64)
            out[:] = self.table.symbols[0]
            return out
        return resolve("huffman.decode")(self, payload, n_symbols)

    def encoded_size_bits(self, symbols: np.ndarray) -> int:
        """Exact payload size in bits without materializing the stream.

        Validates exactly like :meth:`encode`: symbols outside the table
        alphabet or with zero frequency raise :class:`HuffmanError`.
        """
        symbols = np.asarray(symbols).reshape(-1)
        if symbols.size == 0:
            return 0
        enc_len = self._encode_tables()[0]
        if symbols.min() < 0 or symbols.max() >= enc_len.size:
            raise HuffmanError("symbol outside table alphabet")
        lengths = enc_len[symbols]
        if (lengths == 0).any():
            raise HuffmanError("symbol with zero frequency in table")
        return int(lengths.sum())


def _decode_reference(
    codec: "HuffmanCodec", payload: bytes, n_symbols: int
) -> np.ndarray:
    """Per-symbol peek/skip decode loop — the ``huffman.decode`` reference."""
    out = np.empty(n_symbols, dtype=np.int64)
    reader = BitReader(payload)
    fast_bits = codec._fast_bits
    fast_sym = codec._fast_sym
    fast_len = codec._fast_len
    first_code = codec._first_code
    first_idx = codec._first_idx
    len_count = codec._len_count
    symbols = codec.table.symbols
    maxlen = codec.table.max_length
    peek = reader.peek
    skip = reader.skip
    for i in range(n_symbols):
        window = peek(fast_bits)
        s = fast_sym[window]
        if s >= 0:
            skip(int(fast_len[window]))
            out[i] = s
            continue
        # Slow path: extend bit by bit beyond the fast window.
        code = window
        length = fast_bits
        while True:
            length += 1
            if length > maxlen:
                raise HuffmanError("invalid code in bitstream")
            code = peek(length)
            c = int(len_count[length]) if length < len(len_count) else 0
            fc = int(first_code[length])
            if c and fc <= code < fc + c:
                skip(length)
                out[i] = symbols[first_idx[length] + (code - fc)]
                break
    return out


register_kernel(
    "huffman.decode",
    _decode_reference,
    fast="repro.kernels.huffman_fast:decode_payload",
)
