"""Symbol statistics for the entropy-coding stage.

The linear-scaling quantizer emits codes that are heavily concentrated
around the radius (accurately predicted points), which is exactly why SZ
follows it with Huffman coding (paper §2.1 step 4).  These helpers compute
the frequency table the Huffman builder consumes and the empirical entropy
used by tests to check encode optimality.
"""

from __future__ import annotations

import numpy as np

__all__ = ["symbol_histogram", "entropy_bits"]


def symbol_histogram(symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, counts)`` for the distinct symbols in ``symbols``.

    Symbols must be non-negative integers.  Uses ``bincount`` when the
    alphabet is dense and small (the 16-bit quant-code case), falling back
    to ``unique`` for sparse/large alphabets.
    """
    symbols = np.asarray(symbols)
    if symbols.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if not np.issubdtype(symbols.dtype, np.integer):
        raise TypeError(f"symbols must be integers, got {symbols.dtype}")
    flat = symbols.reshape(-1)
    if flat.min() < 0:
        raise ValueError("symbols must be non-negative")
    hi = int(flat.max())
    if hi < 1 << 22:  # dense path: one pass, no sort
        counts = np.bincount(flat.astype(np.int64, copy=False))
        values = np.nonzero(counts)[0]
        return values.astype(np.int64), counts[values].astype(np.int64)
    values, counts = np.unique(flat, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def entropy_bits(counts: np.ndarray) -> float:
    """Shannon entropy in bits/symbol of an empirical distribution."""
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size == 0:
        return 0.0
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())
