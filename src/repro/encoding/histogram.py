"""Symbol statistics for the entropy-coding stage.

The linear-scaling quantizer emits codes that are heavily concentrated
around the radius (accurately predicted points), which is exactly why SZ
follows it with Huffman coding (paper §2.1 step 4).  These helpers compute
the frequency table the Huffman *and* rANS builders consume and the
empirical entropy used by tests to check encode optimality.

The counting pass is a ``REPRO_KERNELS`` twin (``histogram.counts``):
the scalar dict-walk reference lives here, the ``np.bincount`` /
``np.unique`` fast path in :mod:`repro.kernels.histogram_fast`.  Both
return increasing int64 values with matching int64 counts, so table
builds are byte-identical across dispatch modes.
"""

from __future__ import annotations

import numpy as np

from ..kernels.dispatch import register_kernel, resolve

__all__ = ["symbol_histogram", "entropy_bits"]


def _counts_reference(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Scalar counting pass over a validated flat non-negative int array."""
    counts: dict[int, int] = {}
    for v in flat.tolist():
        counts[v] = counts.get(v, 0) + 1
    values = sorted(counts)
    return (
        np.array(values, dtype=np.int64),
        np.array([counts[v] for v in values], dtype=np.int64),
    )


register_kernel(
    "histogram.counts",
    _counts_reference,
    fast="repro.kernels.histogram_fast:symbol_counts",
)


def symbol_histogram(symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, counts)`` for the distinct symbols in ``symbols``.

    Symbols must be non-negative integers.  Validation runs here (host
    level); the counting pass dispatches through the ``histogram.counts``
    kernel registry entry.
    """
    symbols = np.asarray(symbols)
    if symbols.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if not np.issubdtype(symbols.dtype, np.integer):
        raise TypeError(f"symbols must be integers, got {symbols.dtype}")
    flat = symbols.reshape(-1)
    if flat.min() < 0:
        raise ValueError("symbols must be non-negative")
    return resolve("histogram.counts")(flat)


def entropy_bits(counts: np.ndarray) -> float:
    """Shannon entropy in bits/symbol of an empirical distribution."""
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size == 0:
        return 0.0
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())
