"""Exception hierarchy for the waveSZ reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single type at API boundaries.  Subtypes are split by subsystem so
tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """Invalid compressor / model configuration (bad error bound, bins, mode)."""


class ShapeError(ReproError, ValueError):
    """Input array has an unsupported shape or dimensionality."""


class DTypeError(ReproError, TypeError):
    """Input array has an unsupported dtype (only float32/float64 fields)."""


class EncodingError(ReproError):
    """Entropy-coding failure (corrupt bitstream, unknown symbol)."""


class BitstreamError(EncodingError):
    """Low-level bit IO failure: truncated or misaligned stream."""


class HuffmanError(EncodingError):
    """Huffman table construction or decode failure."""


class LosslessError(ReproError):
    """LZ77 / DEFLATE-substrate failure (corrupt container, bad backend)."""


class ContainerError(ReproError):
    """Compressed container is malformed (bad magic, truncated section)."""


class ErrorBoundViolation(ReproError):
    """Decompressed data violates the user-set error bound.

    This is never expected in correct operation; it exists so verification
    helpers can signal a hard invariant break rather than return a bool.
    """


class ModelError(ReproError):
    """FPGA / CPU performance-model misuse (e.g. Λ <= 0, zero lanes)."""


class DatasetError(ReproError):
    """Unknown dataset / field name in the synthetic SDRB registry."""
