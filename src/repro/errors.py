"""Exception hierarchy for the waveSZ reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single type at API boundaries.  Subtypes are split by subsystem so
tests can assert on the precise failure mode.

:func:`decode_guard` is the boundary enforcement for that promise on the
*decode* side: any stray ``ValueError``/``struct.error``/``IndexError`` that a
malformed payload manages to provoke out of NumPy or ``struct`` is converted
to :class:`ContainerError` so corrupted input can never crash a caller with a
non-``ReproError`` exception.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """Invalid compressor / model configuration (bad error bound, bins, mode)."""


class ShapeError(ReproError, ValueError):
    """Input array has an unsupported shape or dimensionality."""


class DTypeError(ReproError, TypeError):
    """Input array has an unsupported dtype (only float32/float64 fields)."""


class EncodingError(ReproError):
    """Entropy-coding failure (corrupt bitstream, unknown symbol)."""


class BitstreamError(EncodingError):
    """Low-level bit IO failure: truncated or misaligned stream."""


class HuffmanError(EncodingError):
    """Huffman table construction or decode failure."""


class RansError(EncodingError):
    """rANS table construction or stream encode/decode failure."""


class LosslessError(ReproError):
    """LZ77 / DEFLATE-substrate failure (corrupt container, bad backend)."""


class ContainerError(ReproError):
    """Compressed container is malformed (bad magic, truncated section)."""


class ChecksumError(ContainerError):
    """A stored checksum does not match the recomputed one (bit rot, tampering)."""


class FaultInjectionError(ReproError):
    """A fault spec cannot be applied to the given payload (bad offset, not a
    parseable container for a structural fault, or a no-op mutation)."""


class StoreError(ReproError):
    """Array-store failure (unknown dataset, bad name, malformed manifest,
    missing object) that is not a checksum/corruption problem — those keep
    raising :class:`ChecksumError` / :class:`ContainerError` so store reads
    and direct payload decodes classify damage identically."""


class ServiceError(ReproError):
    """Batch-compression service failure (scheduling, worker pool, protocol)."""


class QueueFullError(ServiceError):
    """The service's bounded job queue rejected a submission (backpressure).

    Raised instead of growing the queue without bound; callers either retry
    later, submit with ``block=True``, or shed load.
    """


class JobFailedError(ServiceError):
    """A job exhausted its retries (or hit a permanent fault) and failed."""


class TransportError(ServiceError):
    """The wire between client and server failed mid-request (connection
    reset, short frame, socket closed).  Always tagged with the op name and
    request id so a retry — idempotent by request id — can be correlated."""


class ServiceTimeoutError(TransportError):
    """A per-request deadline expired while waiting on the socket."""


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open: recent requests failed and the
    cooldown has not elapsed, so the call failed fast without touching the
    network."""


class WorkerHungError(ServiceError):
    """A worker exceeded the watchdog's hang timeout and was killed.

    Classified transient: the pool respawns workers, so the retry runs on a
    fresh process."""


class SimulatedCrash(BaseException):
    """The chaos layer's process-death signal (crash-at-step-k).

    Deliberately *not* a :class:`ReproError` — and not even an
    ``Exception`` — so no ``except ReproError``/``except Exception``
    handler in the code under test can swallow it: a real ``kill -9``
    cannot be caught either.  Only the chaos harness catches it.
    """


class DeadlineExpiredError(ServiceError):
    """A job's deadline passed before a worker could start it."""


class ErrorBoundViolation(ReproError):
    """Decompressed data violates the user-set error bound.

    This is never expected in correct operation; it exists so verification
    helpers can signal a hard invariant break rather than return a bool.
    """


class ModelError(ReproError):
    """FPGA / CPU performance-model misuse (e.g. Λ <= 0, zero lanes)."""


class DatasetError(ReproError):
    """Unknown dataset / field name in the synthetic SDRB registry."""


#: Non-Repro exception types a malformed payload can provoke out of the
#: stdlib / NumPy while decoding.  ``MemoryError`` is deliberately absent:
#: header sanity caps keep allocations bounded, and a genuine OOM should
#: surface as itself.
_DECODE_LEAKS = (
    struct.error,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    OverflowError,
    UnicodeDecodeError,
)


@contextmanager
def decode_guard(what: str = "compressed payload"):
    """Convert stray stdlib/NumPy exceptions into :class:`ContainerError`.

    Wrap every payload-decode entry point with this so the public contract
    — *malformed input raises a ReproError subtype* — holds even for damage
    the explicit bounds checks did not anticipate.  ``ReproError`` subtypes
    pass through untouched.
    """
    try:
        yield
    except ReproError:
        raise
    except _DECODE_LEAKS as exc:
        raise ContainerError(
            f"malformed {what}: {type(exc).__name__}: {exc}"
        ) from exc
