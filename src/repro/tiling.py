"""Tile-grid geometry: the one place tile index ↔ array offsets lives.

The band decomposition (independent tiles along the slowest axis, paper
§3.1–3.2 / Figure 8) is consumed by three layers — the serial tiled
compressor, the worker-pool fan-out, and the array store's slice reader —
and each needs the same arithmetic: where does band ``t`` start, which
bands overlap a requested row window, how do band-local rows map back to
field rows.  :class:`TileGrid` centralizes that arithmetic so the layers
cannot drift apart.

A grid is defined by the field shape and the band start offsets along
axis 0; :meth:`TileGrid.regular` builds the canonical near-equal split
(the same ``linspace`` edges SZ's OpenMP mode uses), while
:meth:`TileGrid.from_starts` revalidates a grid read back from a payload
or manifest header, where every value is attacker-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ShapeError

__all__ = ["TileGrid", "normalize_slices", "MIN_BAND_ROWS"]

#: Thinnest band the predictors tolerate (one context row + one data row).
MIN_BAND_ROWS = 2


@dataclass(frozen=True)
class TileGrid:
    """A band decomposition of an nd field along axis 0."""

    shape: tuple[int, ...]
    starts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) < 1 or any(d < 1 for d in self.shape):
            raise ShapeError(f"bad field shape {self.shape}")
        n0 = self.shape[0]
        if not self.starts or self.starts[0] != 0:
            raise ShapeError(f"band starts must begin at 0, got {self.starts}")
        prev = -1
        for s in self.starts:
            if not isinstance(s, int) or not prev < s < n0 + 1:
                raise ShapeError(
                    f"band starts {self.starts} are not strictly increasing "
                    f"offsets inside a first dimension of {n0}"
                )
            prev = s

    # -- construction -----------------------------------------------------

    @staticmethod
    def max_tiles(shape: tuple[int, ...]) -> int:
        """The largest feasible band count for ``shape`` (may be 0)."""
        return shape[0] // MIN_BAND_ROWS if shape else 0

    @classmethod
    def regular(
        cls, shape: tuple[int, ...], n_tiles: int, *, clamp: bool = False
    ) -> "TileGrid":
        """The canonical near-equal split into ``n_tiles`` bands.

        Requests no field can satisfy — more bands than the split axis can
        hold at :data:`MIN_BAND_ROWS` rows each — raise :class:`ShapeError`
        naming the feasible maximum, or are clamped down to it with
        ``clamp=True``.  A field too small for even one band always raises:
        there is nothing to clamp to.
        """
        if not shape:
            raise ShapeError("cannot tile a 0-dimensional field")
        if n_tiles < 1:
            raise ShapeError(f"n_tiles must be >= 1, got {n_tiles}")
        n0 = int(shape[0])
        feasible = cls.max_tiles(shape)
        if feasible < 1:
            raise ShapeError(
                f"field with first dimension {n0} is smaller than one "
                f"{MIN_BAND_ROWS}-row band and cannot be tiled"
            )
        if n_tiles > feasible:
            if not clamp:
                raise ShapeError(
                    f"{n_tiles} tiles over a first dimension of {n0} leaves "
                    f"bands thinner than {MIN_BAND_ROWS} points "
                    f"(at most {feasible} tiles fit)"
                )
            n_tiles = feasible
        edges = np.linspace(0, n0, n_tiles + 1, dtype=int)
        return cls(tuple(int(d) for d in shape), tuple(int(e) for e in edges[:-1]))

    @classmethod
    def from_starts(cls, shape, starts) -> "TileGrid":
        """Rebuild (and fully validate) a grid from header/manifest values."""
        try:
            shape_t = tuple(int(d) for d in shape)
            starts_t = tuple(int(s) for s in starts)
        except (TypeError, ValueError) as exc:
            raise ShapeError(f"bad tile grid {shape!r} / {starts!r}") from exc
        return cls(shape_t, starts_t)

    # -- geometry ---------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return len(self.starts)

    def resolve(self, index: int) -> int:
        """Normalize a (possibly negative) tile index, range-checked."""
        n = self.n_tiles
        resolved = index + n if index < 0 else index
        if not 0 <= resolved < n:
            raise ShapeError(
                f"tile index {index} out of range for {n} tiles "
                f"(valid: {-n}..{n - 1})"
            )
        return resolved

    def band_range(self, index: int) -> tuple[int, int]:
        """Row span ``[start, stop)`` of band ``index`` along axis 0."""
        t = self.resolve(index)
        stop = self.starts[t + 1] if t + 1 < self.n_tiles else self.shape[0]
        return self.starts[t], stop

    def band_slice(self, index: int) -> slice:
        start, stop = self.band_range(index)
        return slice(start, stop)

    def tile_slices(self, index: int) -> tuple[slice, ...]:
        """Full nd indexer placing band ``index`` inside the field."""
        return (self.band_slice(index),) + tuple(
            slice(0, d) for d in self.shape[1:]
        )

    def tile_shape(self, index: int) -> tuple[int, ...]:
        start, stop = self.band_range(index)
        return (stop - start,) + self.shape[1:]

    def band_slices(self) -> list[slice]:
        """All band slices in order (the ``plan_bands`` contract)."""
        return [self.band_slice(t) for t in range(self.n_tiles)]

    def overlapping(self, rows: slice) -> tuple[int, ...]:
        """Tile indices whose rows intersect ``rows`` (a concrete slice)."""
        lo = 0 if rows.start is None else rows.start
        hi = self.shape[0] if rows.stop is None else rows.stop
        return tuple(
            t
            for t in range(self.n_tiles)
            if self.band_range(t)[0] < hi and self.band_range(t)[1] > lo
        )


def normalize_slices(
    shape: tuple[int, ...], slices
) -> tuple[slice, ...]:
    """Turn a user slice request into concrete per-axis ``slice`` objects.

    Accepts a single ``slice``/pair or a sequence of them, one per leading
    axis; trailing axes default to their full extent.  Each element may be
    a ``slice`` (step 1 or ``None`` only), a ``(start, stop)`` pair with
    ``None`` meaning "to the edge", or ``None`` for a full axis.  Negative
    offsets count from the end, as in NumPy.  Empty windows and anything
    out of range raise :class:`ShapeError` — the store promises either a
    correct sub-array or a clean error, never silent clipping surprises.
    """
    if isinstance(slices, slice) or (
        isinstance(slices, (tuple, list))
        and len(slices) == 2
        and all(s is None or isinstance(s, int) for s in slices)
    ):
        slices = (slices,)
    if len(slices) > len(shape):
        raise ShapeError(
            f"{len(slices)} slice axes for a {len(shape)}-dimensional field"
        )
    out: list[slice] = []
    for axis, d in enumerate(shape):
        if axis < len(slices):
            s = slices[axis]
        else:
            s = None
        if s is None:
            out.append(slice(0, d))
            continue
        if isinstance(s, (tuple, list)):
            if len(s) != 2:
                raise ShapeError(f"axis {axis}: bad slice window {s!r}")
            s = slice(s[0], s[1])
        if not isinstance(s, slice):
            raise ShapeError(f"axis {axis}: bad slice window {s!r}")
        if s.step not in (None, 1):
            raise ShapeError(f"axis {axis}: only unit-step slices, got {s.step}")
        start = 0 if s.start is None else int(s.start)
        stop = d if s.stop is None else int(s.stop)
        if start < 0:
            start += d
        if stop < 0:
            stop += d
        if not 0 <= start < stop <= d:
            raise ShapeError(
                f"axis {axis}: window [{s.start}:{s.stop}] is empty or "
                f"outside a dimension of {d}"
            )
        out.append(slice(start, stop))
    return tuple(out)
