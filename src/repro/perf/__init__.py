"""Performance reporting: modelled hardware throughput vs measured wall clock.

The modelled numbers (what Tables 5 and Figure 8 reproduce) live in
:mod:`repro.fpga.timing`; this package re-exports them and adds honest
wall-clock measurement of the *Python* implementations so the two are
never conflated — the repro band for this paper is "functional simulation
only, not throughput-faithful", and benches label which is which.
"""

from ..fpga.timing import (
    cpu_sz14_throughput,
    ghostsz_throughput,
    openmp_efficiency,
    wavesz_throughput,
)
from .measure import MeasuredThroughput, measure_compressor
from .stages import StageRecorder, active_recorder, recording_stages

__all__ = [
    "cpu_sz14_throughput",
    "ghostsz_throughput",
    "openmp_efficiency",
    "wavesz_throughput",
    "MeasuredThroughput",
    "measure_compressor",
    "StageRecorder",
    "active_recorder",
    "recording_stages",
]
