"""Wall-clock measurement of the Python implementations.

Used by benches to report the simulator's own speed alongside the
modelled hardware numbers (clearly labelled — see package docstring).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

__all__ = ["MeasuredThroughput", "measure_compressor"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> Any: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class MeasuredThroughput:
    """Wall-clock compress/decompress rates of a Python implementation."""

    variant: str
    n_points: int
    compress_s: float
    decompress_s: float

    @property
    def compress_mb_s(self) -> float:
        return self.n_points * 4 / (self.compress_s * 1e6)

    @property
    def decompress_mb_s(self) -> float:
        return self.n_points * 4 / (self.decompress_s * 1e6)


def measure_compressor(
    compressor: _Compressor,
    data: np.ndarray,
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    repeats: int = 1,
) -> tuple[MeasuredThroughput, Any]:
    """Time ``repeats`` compress+decompress passes; returns (timing, last cf)."""
    best_c = float("inf")
    best_d = float("inf")
    cf = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        cf = compressor.compress(data, eb, mode)
        t1 = time.perf_counter()
        compressor.decompress(cf)
        t2 = time.perf_counter()
        best_c = min(best_c, t1 - t0)
        best_d = min(best_d, t2 - t1)
    return (
        MeasuredThroughput(
            variant=compressor.name,
            n_points=int(data.size),
            compress_s=best_c,
            decompress_s=best_d,
        ),
        cf,
    )
