"""Wall-clock measurement of the Python implementations.

Used by benches to report the simulator's own speed alongside the
modelled hardware numbers (clearly labelled — see package docstring).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from .stages import recording_stages

__all__ = ["MeasuredThroughput", "measure_compressor"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> Any: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class MeasuredThroughput:
    """Wall-clock compress/decompress rates of a Python implementation.

    ``compress_stages`` / ``decompress_stages`` hold per-stage seconds
    (stage name → time, from the best-timed pass) when the measurement
    was taken with ``stage_timing=True`` against a pipeline compressor;
    they stay empty otherwise.
    """

    variant: str
    n_points: int
    compress_s: float
    decompress_s: float
    compress_stages: dict[str, float] = field(default_factory=dict)
    decompress_stages: dict[str, float] = field(default_factory=dict)

    @property
    def compress_mb_s(self) -> float:
        return self.n_points * 4 / (self.compress_s * 1e6)

    @property
    def decompress_mb_s(self) -> float:
        return self.n_points * 4 / (self.decompress_s * 1e6)


def measure_compressor(
    compressor: _Compressor,
    data: np.ndarray,
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    repeats: int = 1,
    warmup: int = 0,
    stage_timing: bool = False,
) -> tuple[MeasuredThroughput, Any]:
    """Time ``repeats`` compress+decompress passes; returns (timing, last cf).

    ``warmup`` extra untimed passes run first, so one-time costs (table
    construction, ``lru_cache`` population, allocator growth) don't land
    in the timed minimum.  With ``stage_timing=True`` each timed pass
    runs under a :class:`~repro.perf.stages.StageRecorder` and the
    per-stage seconds of the best pass are attached to the result —
    letting a bench attribute time to PQD / Huffman / gzip stages
    instead of whole-pipeline wall clock.  Stages that report nested
    sub-stage keys (the entropy stage's ``codes_entropy.table`` /
    ``codes_entropy.stream`` table-build vs stream-coding split) land as
    additional flat entries next to their parent stage's total.
    """
    for _ in range(max(warmup, 0)):
        compressor.decompress(compressor.compress(data, eb, mode))

    best_c = float("inf")
    best_d = float("inf")
    stages_c: dict[str, float] = {}
    stages_d: dict[str, float] = {}
    cf = None
    for _ in range(max(repeats, 1)):
        if stage_timing:
            with recording_stages() as rec_c:
                t0 = time.perf_counter()
                cf = compressor.compress(data, eb, mode)
                t1 = time.perf_counter()
            with recording_stages() as rec_d:
                compressor.decompress(cf)
                t2 = time.perf_counter()
        else:
            t0 = time.perf_counter()
            cf = compressor.compress(data, eb, mode)
            t1 = time.perf_counter()
            compressor.decompress(cf)
            t2 = time.perf_counter()
        if t1 - t0 < best_c:
            best_c = t1 - t0
            if stage_timing:
                stages_c = rec_c.snapshot()
        if t2 - t1 < best_d:
            best_d = t2 - t1
            if stage_timing:
                stages_d = rec_d.snapshot()
    return (
        MeasuredThroughput(
            variant=compressor.name,
            n_points=int(data.size),
            compress_s=best_c,
            decompress_s=best_d,
            compress_stages=stages_c,
            decompress_stages=stages_d,
        ),
        cf,
    )
