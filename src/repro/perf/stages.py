"""Per-stage timing hooks for the codec pipeline.

The pipeline runner (:class:`repro.codec.pipeline.StagePipeline`) checks
for an active :class:`StageRecorder` around every stage call; when one is
installed it attributes wall-clock time to the stage's name, so a bench
can split "compress took 54 ms" into PQD / Huffman / gzip shares instead
of guessing from whole-pipeline numbers.

The active recorder is a :class:`contextvars.ContextVar`, so concurrent
measurements (the service's thread pools, ``prefetch_map`` workers)
never write into each other's profiles.  With no recorder installed the
runner's overhead is a single context-variable read per stage.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = ["StageRecorder", "recording_stages", "active_recorder"]

_active: ContextVar["StageRecorder | None"] = ContextVar(
    "repro_stage_recorder", default=None
)


class StageRecorder:
    """Accumulates seconds per stage name, in first-seen order."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, float]:
        """A copy of the accumulated per-stage seconds."""
        return dict(self.seconds)


def active_recorder() -> StageRecorder | None:
    """The recorder the pipeline runner should report into, if any."""
    return _active.get()


@contextmanager
def recording_stages() -> Iterator[StageRecorder]:
    """Install a fresh recorder for the duration of the ``with`` block::

        with recording_stages() as rec:
            compressor.compress(field, eb, mode)
        print(rec.snapshot())  # {"bound": ..., "pqd": ..., "codes": ...}
    """
    recorder = StageRecorder()
    token = _active.set(recorder)
    try:
        yield recorder
    finally:
        _active.reset(token)
