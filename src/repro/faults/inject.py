"""Seedable, declarative fault injection on container byte streams.

Byte-level faults (``BITFLIP``, ``TRUNCATE``, ``GARBAGE``, ``SPLICE``)
apply to any byte string.  Structural faults (``DROP_SECTION``,
``SWAP_SECTIONS``, ``DUPLICATE_SECTION``, ``HEADER_MUTATE``) parse the
payload as a :class:`~repro.io.container.Container`, mutate it, and
re-serialize — *with valid checksums* — which is exactly what makes them
interesting: they model damage (or tampering) that the CRC layer cannot
see, so they exercise the hardened decode paths behind it.

Every fault is a pure function of ``(payload, spec)``; the same spec on
the same payload always produces the same damaged bytes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..errors import ContainerError, FaultInjectionError
from ..io.container import Container

__all__ = ["FaultKind", "FaultSpec", "inject", "FaultInjector"]


class FaultKind(enum.Enum):
    BITFLIP = "bitflip"
    TRUNCATE = "truncate"
    GARBAGE = "garbage"  # overwrite a run of bytes with seeded noise
    SPLICE = "splice"  # insert a run of seeded noise bytes
    DROP_SECTION = "drop_section"
    SWAP_SECTIONS = "swap_sections"
    DUPLICATE_SECTION = "duplicate_section"
    HEADER_MUTATE = "header_mutate"


@dataclass(frozen=True)
class FaultSpec:
    """One reproducible fault.

    ``offset``/``bit``/``length`` parameterize the byte-level kinds;
    ``index``/``index2`` pick sections for the structural kinds; ``key``
    names the header field for ``HEADER_MUTATE``; ``seed`` drives any
    randomness (noise bytes, mutation magnitude) deterministically.
    """

    kind: FaultKind
    offset: int = 0
    bit: int = 0
    length: int = 1
    index: int = 0
    index2: int = 0
    key: str = ""
    seed: int = 0


def _parse_container(payload: bytes) -> Container:
    try:
        return Container.from_bytes(payload)
    except ContainerError as exc:
        raise FaultInjectionError(
            f"structural fault needs a parseable container: {exc}"
        ) from exc


def _mutated_value(value, rng: random.Random):
    """A deterministic 'plausibly wrong' replacement for a header value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        choices = [value + 1, value - 1, value * 2 + 1, value + 1000, 0, -1]
        return choices[rng.randrange(len(choices))]
    if isinstance(value, float):
        choices = [value * 2.0, value / 2.0, value + 1.0, 0.0, -value]
        return choices[rng.randrange(len(choices))]
    if isinstance(value, str):
        return value + "X" if rng.random() < 0.5 else value[:-1]
    if isinstance(value, list):
        if not value:
            return [1]
        out = list(value)
        i = rng.randrange(len(out))
        out[i] = _mutated_value(out[i], rng)
        return out
    if isinstance(value, dict):
        if not value:
            return {"x": 1}
        out = dict(value)
        k = sorted(out)[rng.randrange(len(out))]
        out[k] = _mutated_value(out[k], rng)
        return out
    return 1  # None or anything else: replace with a wrong-typed value


def inject(payload: bytes, spec: FaultSpec) -> bytes:
    """Apply ``spec`` to ``payload``; deterministic, never in place.

    Raises :class:`FaultInjectionError` when the spec cannot apply (offset
    out of range, structural fault on an unparseable payload, or a
    mutation that would be a byte-level no-op).
    """
    if not payload:
        raise FaultInjectionError("cannot inject into an empty payload")
    rng = random.Random(spec.seed)

    if spec.kind is FaultKind.BITFLIP:
        if not 0 <= spec.offset < len(payload):
            raise FaultInjectionError(f"offset {spec.offset} out of range")
        if not 0 <= spec.bit < 8:
            raise FaultInjectionError(f"bit {spec.bit} out of range")
        out = bytearray(payload)
        out[spec.offset] ^= 1 << spec.bit
        return bytes(out)

    if spec.kind is FaultKind.TRUNCATE:
        if not 0 <= spec.offset < len(payload):
            raise FaultInjectionError(f"offset {spec.offset} out of range")
        return payload[: spec.offset]

    if spec.kind is FaultKind.GARBAGE:
        if spec.length < 1 or not 0 <= spec.offset < len(payload):
            raise FaultInjectionError("bad garbage run")
        end = min(spec.offset + spec.length, len(payload))
        noise = bytes(rng.randrange(256) for _ in range(end - spec.offset))
        out = bytearray(payload)
        if bytes(out[spec.offset : end]) == noise:
            noise = bytes(b ^ 0xFF for b in noise)
        out[spec.offset : end] = noise
        return bytes(out)

    if spec.kind is FaultKind.SPLICE:
        if spec.length < 1 or not 0 <= spec.offset <= len(payload):
            raise FaultInjectionError("bad splice run")
        noise = bytes(rng.randrange(256) for _ in range(spec.length))
        return payload[: spec.offset] + noise + payload[spec.offset :]

    # -- structural faults: parse, mutate, re-serialize with valid CRCs --
    container = _parse_container(payload)
    sections = container.sections

    if spec.kind is FaultKind.DROP_SECTION:
        if not sections:
            raise FaultInjectionError("container has no sections to drop")
        i = spec.index % len(sections)
        del sections[i]
        return container.to_bytes()

    if spec.kind is FaultKind.SWAP_SECTIONS:
        if len(sections) < 2:
            raise FaultInjectionError("need two sections to swap")
        i = spec.index % len(sections)
        j = spec.index2 % len(sections)
        if i == j:
            j = (i + 1) % len(sections)
        a, b = sections[i], sections[j]
        if a.payload == b.payload:
            raise FaultInjectionError("swap of identical payloads is a no-op")
        sections[i] = type(a)(a.name, b.payload)
        sections[j] = type(b)(b.name, a.payload)
        return container.to_bytes()

    if spec.kind is FaultKind.DUPLICATE_SECTION:
        if not sections:
            raise FaultInjectionError("container has no sections to duplicate")
        i = spec.index % len(sections)
        sections.insert(i, sections[i])
        return container.to_bytes()

    if spec.kind is FaultKind.HEADER_MUTATE:
        header = container.header
        if not header:
            raise FaultInjectionError("container header is empty")
        keys = sorted(header)
        key = spec.key if spec.key in header else keys[rng.randrange(len(keys))]
        header[key] = _mutated_value(header[key], rng)
        out = container.to_bytes()
        if out == payload:
            raise FaultInjectionError(f"mutation of {key!r} was a no-op")
        return out

    raise FaultInjectionError(f"unknown fault kind {spec.kind!r}")


class FaultInjector:
    """Seeded generator of fault sweeps over a payload.

    The same ``(seed, payload, n)`` always yields the same sequence of
    ``(spec, damaged_bytes)`` pairs, so a failing fault from CI reproduces
    locally from its spec alone.
    """

    #: Relative draw weights; byte-level faults dominate because they model
    #: storage/transport corruption, structural faults probe past the CRCs.
    _KINDS = (
        (FaultKind.BITFLIP, 5),
        (FaultKind.TRUNCATE, 3),
        (FaultKind.GARBAGE, 2),
        (FaultKind.SPLICE, 1),
        (FaultKind.DROP_SECTION, 1),
        (FaultKind.SWAP_SECTIONS, 1),
        (FaultKind.DUPLICATE_SECTION, 1),
        (FaultKind.HEADER_MUTATE, 2),
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _draw(self, rng: random.Random, payload: bytes) -> FaultSpec:
        kinds = [k for k, w in self._KINDS for _ in range(w)]
        kind = kinds[rng.randrange(len(kinds))]
        n = len(payload)
        return FaultSpec(
            kind=kind,
            offset=rng.randrange(n),
            bit=rng.randrange(8),
            length=rng.randrange(1, min(64, n) + 1),
            index=rng.randrange(16),
            index2=rng.randrange(16),
            seed=rng.randrange(2**31),
        )

    def specs(self, payload: bytes, n: int) -> list[FaultSpec]:
        """Draw ``n`` applicable specs (skipping inapplicable draws)."""
        rng = random.Random(self.seed)
        out: list[FaultSpec] = []
        attempts = 0
        while len(out) < n:
            attempts += 1
            if attempts > 50 * n:
                raise FaultInjectionError(
                    "payload accepts too few fault kinds for the sweep"
                )
            spec = self._draw(rng, payload)
            try:
                damaged = inject(payload, spec)
            except FaultInjectionError:
                continue
            if damaged != payload:
                out.append(spec)
        return out

    def sweep(self, payload: bytes, n: int):
        """Yield ``n`` deterministic ``(spec, damaged_bytes)`` pairs."""
        for spec in self.specs(payload, n):
            yield spec, inject(payload, spec)
