"""Deterministic filesystem fault plane: torn writes, lost renames, crashes.

:class:`OsFileSystem` is the thin mutation surface the array store writes
through — plain byte writes plus the three durability primitives a
crash-consistent layout needs (``fsync_file``, ``replace``, ``fsync_dir``).
:class:`CrashFS` is the same surface with a *page-cache model* bolted on:
every mutation updates both the real directory tree (what the process
sees) and a shadow *durable image* (what would survive ``kill -9`` plus a
power cut), and a seeded fault schedule can

* **crash at step k** — raise :class:`~repro.errors.SimulatedCrash`
  before the k-th mutation (it derives from ``BaseException`` so no
  handler in the code under test can swallow it);
* **tear a write** — persist only a seeded prefix, then crash;
* **fail a rename** — ``replace`` raises ``EIO`` and the process lives;
* **hit ENOSPC** — a write persists a prefix and raises ``ENOSPC``;
* **drop an fsync** — the call silently does nothing (a lying disk).

After a crash, :meth:`CrashFS.crash_and_restore` rewrites the real tree
from the durable image, resolving every not-yet-durable path with seeded
choices (old content, torn prefix, full content, or absent).  The model:

* file **data** becomes durable only through ``fsync_file``;
* directory **entries** (create / rename / unlink) become durable only
  through ``fsync_dir`` on the parent;
* until both have happened, a crash may surface any combination the
  kernel could have left behind.

The same ``(schedule, seed)`` always produces the same post-crash tree,
so a failing schedule from CI replays locally from its spec alone.
"""

from __future__ import annotations

import enum
import errno
import os
import random
from dataclasses import dataclass
from pathlib import Path

from ..errors import FaultInjectionError, SimulatedCrash

__all__ = [
    "FsFaultKind",
    "FsFault",
    "OsFileSystem",
    "CrashFS",
]


class FsFaultKind(enum.Enum):
    CRASH = "crash"  # die before the op at this step runs
    TORN_WRITE = "torn_write"  # persist a prefix of the write, then die
    FAIL_RENAME = "fail_rename"  # replace raises EIO; process survives
    ENOSPC = "enospc"  # write persists a prefix, raises ENOSPC; survives
    DROP_FSYNC = "drop_fsync"  # fsync silently lies; process survives


@dataclass(frozen=True)
class FsFault:
    """One fault, armed at one mutation step (1-based).

    ``TORN_WRITE``/``ENOSPC`` arm only if the op at ``step`` is a write
    and degrade to ``CRASH``/no-op otherwise; ``FAIL_RENAME`` only on a
    ``replace``; ``DROP_FSYNC`` only on an fsync.  ``seed`` drives the
    prefix length of torn writes.
    """

    kind: FsFaultKind
    step: int
    seed: int = 0


class OsFileSystem:
    """The real thing: POSIX mutations with honest durability primitives."""

    def write_bytes(self, path: Path, data: bytes) -> None:
        path.write_bytes(data)

    def fsync_file(self, path: Path) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir-fsync
            pass
        finally:
            os.close(fd)

    def mkdir(self, path: Path) -> None:
        path.mkdir(parents=True, exist_ok=True)

    def unlink(self, path: Path) -> None:
        path.unlink()


class _PathState:
    """Shadow durability bookkeeping for one path under a :class:`CrashFS`.

    ``committed`` is the content that survives if every pending change is
    lost (``None`` = durably absent); ``inode`` is the current logical
    content; ``inode_synced`` says the current content reached the platter
    (``fsync_file``); ``entry_pending`` says the directory entry itself
    (create / rename / unlink) has not been committed by a ``fsync_dir``.
    """

    __slots__ = ("committed", "inode", "inode_synced", "entry_pending")

    def __init__(
        self,
        committed: bytes | None,
        inode: bytes | None,
        inode_synced: bool,
        entry_pending: bool,
    ) -> None:
        self.committed = committed
        self.inode = inode
        self.inode_synced = inode_synced
        self.entry_pending = entry_pending

    @property
    def durable(self) -> bool:
        return not self.entry_pending and (
            self.inode is None or self.inode_synced
        )


class CrashFS(OsFileSystem):
    """A filesystem that keeps score of what a crash would destroy."""

    def __init__(
        self, root: str | Path, *, schedule: tuple[FsFault, ...] = (),
        seed: int = 0,
    ) -> None:
        self.root = Path(root)
        self.seed = seed
        self.step = 0
        self.crashed = False
        self._faults: dict[int, FsFault] = {}
        for f in schedule:
            if f.step in self._faults:
                raise FaultInjectionError(
                    f"two faults armed at step {f.step}"
                )
            self._faults[f.step] = f
        self._state: dict[str, _PathState] = {}
        #: op log (op name, path) per step — lets tests name the step a
        #: schedule killed, and sizes the kill-at-every-step sweep.
        self.ops: list[tuple[str, str]] = []
        #: faults that actually applied (a mis-aimed survivable fault
        #: misses silently; the chaos harness keys its invariants off
        #: what fired, not what was scheduled).
        self.fired: list[FsFault] = []

    # -- bookkeeping ------------------------------------------------------

    def _key(self, path: Path) -> str:
        return os.path.normpath(str(path))

    def _track(self, path: Path) -> _PathState:
        key = self._key(path)
        st = self._state.get(key)
        if st is None:
            if path.exists():
                st = _PathState(path.read_bytes(), path.read_bytes(), True, False)
            else:
                st = _PathState(None, None, True, False)
            self._state[key] = st
        return st

    def _arm(self, op: str, path: Path) -> FsFault | None:
        """Advance the step counter and return the fault armed here."""
        if self.crashed:
            raise FaultInjectionError(
                "filesystem already crashed; call crash_and_restore() first"
            )
        self.step += 1
        self.ops.append((op, self._key(path)))
        fault = self._faults.get(self.step)
        if fault is None:
            return None
        applies = {
            FsFaultKind.CRASH: True,
            FsFaultKind.TORN_WRITE: op == "write",
            FsFaultKind.ENOSPC: op == "write",
            FsFaultKind.FAIL_RENAME: op == "replace",
            FsFaultKind.DROP_FSYNC: op in ("fsync_file", "fsync_dir"),
        }[fault.kind]
        if not applies:
            # a mis-aimed torn write still kills the process; the
            # survivable kinds just miss.
            if fault.kind is FsFaultKind.TORN_WRITE:
                fault = FsFault(FsFaultKind.CRASH, fault.step, fault.seed)
            else:
                return None
        self.fired.append(fault)
        return fault

    def _die(self, why: str) -> None:
        self.crashed = True
        raise SimulatedCrash(why)

    @staticmethod
    def _prefix(data: bytes, seed: int) -> bytes:
        if not data:
            return data
        return data[: random.Random(seed).randrange(len(data))]

    # -- the mutation surface ---------------------------------------------

    def write_bytes(self, path: Path, data: bytes) -> None:
        fault = self._arm("write", path)
        st = self._track(path)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before write of {path.name}")
        creating = st.inode is None
        if fault is not None and fault.kind is FsFaultKind.TORN_WRITE:
            torn = self._prefix(data, fault.seed)
            path.write_bytes(torn)
            st.inode = torn
            st.inode_synced = False
            st.entry_pending = st.entry_pending or creating
            self._die(f"crash mid-write of {path.name} ({len(torn)} bytes)")
        if fault is not None and fault.kind is FsFaultKind.ENOSPC:
            part = self._prefix(data, fault.seed)
            path.write_bytes(part)
            st.inode = part
            st.inode_synced = False
            st.entry_pending = st.entry_pending or creating
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC writing {path.name}"
            )
        path.write_bytes(data)
        st.inode = data
        st.inode_synced = False
        st.entry_pending = st.entry_pending or creating

    def fsync_file(self, path: Path) -> None:
        fault = self._arm("fsync_file", path)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before fsync of {path.name}")
        if fault is not None and fault.kind is FsFaultKind.DROP_FSYNC:
            return  # the disk lied; durability state unchanged
        st = self._track(path)
        super().fsync_file(path)
        st.inode_synced = True
        if not st.entry_pending:
            st.committed = st.inode

    def replace(self, src: Path, dst: Path) -> None:
        fault = self._arm("replace", src)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before rename {src.name} -> {dst.name}")
        if fault is not None and fault.kind is FsFaultKind.FAIL_RENAME:
            raise OSError(
                errno.EIO, f"injected rename failure {src.name} -> {dst.name}"
            )
        sst = self._track(src)
        dst_state = self._track(dst)
        super().replace(src, dst)
        dst_state.inode = sst.inode
        dst_state.inode_synced = sst.inode_synced
        dst_state.entry_pending = True
        sst.inode = None
        sst.entry_pending = True

    def fsync_dir(self, path: Path) -> None:
        fault = self._arm("fsync_dir", path)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before dir fsync of {path.name}")
        if fault is not None and fault.kind is FsFaultKind.DROP_FSYNC:
            return
        super().fsync_dir(path)
        key = self._key(path)
        for pkey, st in self._state.items():
            if os.path.dirname(pkey) != key or not st.entry_pending:
                continue
            st.entry_pending = False
            if st.inode is None:
                st.committed = None
            elif st.inode_synced:
                st.committed = st.inode

    def mkdir(self, path: Path) -> None:
        fault = self._arm("mkdir", path)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before mkdir of {path.name}")
        super().mkdir(path)

    def unlink(self, path: Path) -> None:
        fault = self._arm("unlink", path)
        if fault is not None and fault.kind is FsFaultKind.CRASH:
            self._die(f"crash before unlink of {path.name}")
        st = self._track(path)
        super().unlink(path)
        st.inode = None
        st.entry_pending = True

    # -- crash resolution --------------------------------------------------

    def survivors(self, path: Path) -> list[bytes | None]:
        """Every content this path may hold after a crash right now."""
        st = self._track(path)
        out: list[bytes | None] = []

        def add(v: bytes | None) -> None:
            if not any(
                v is w or v == w for w in out
            ):
                out.append(v)

        if st.entry_pending:
            add(st.committed)
        if st.inode is None:
            add(None)
        elif st.inode_synced:
            add(st.inode)
        else:
            # unsynced data: anything from nothing to the full write may
            # have hit the platter (plus the pre-write content).
            add(st.committed)
            add(b"")
            add(st.inode)
            add(("torn", st.inode))  # type: ignore[arg-type]
        return out

    def crash_and_restore(self, seed: int | None = None) -> dict[str, bytes | None]:
        """Rewrite the real tree to one seeded post-crash image.

        Usable after a :class:`SimulatedCrash` *or* mid-flight (modelling
        an external ``kill -9``).  Returns the resolved image (path key →
        surviving content or ``None``) and resets the durability ledger so
        the filesystem can be reused for the next life of the process.
        """
        rng = random.Random(self.seed if seed is None else seed)
        image: dict[str, bytes | None] = {}
        for key in sorted(self._state):
            st = self._state[key]
            options = self.survivors(Path(key))
            pick = options[rng.randrange(len(options))]
            if isinstance(pick, tuple):  # ("torn", data)
                pick = self._prefix(pick[1], rng.randrange(2**31))
            image[key] = pick
            p = Path(key)
            if pick is None:
                if p.exists():
                    p.unlink()
            else:
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_bytes(pick)
        self._state = {
            k: _PathState(v, v, True, False) for k, v in image.items()
        }
        self.crashed = False
        return image
