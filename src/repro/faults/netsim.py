"""Deterministic network fault plane for the service protocol.

:class:`FlakyConnection` wraps a connected socket and injects one fault
per connection at a seeded byte position in the *receive* stream — the
three ways a TCP peer actually hurts you:

* ``RESET`` — the connection dies mid-frame (``ConnectionResetError``);
* ``STALL`` — the peer goes silent and the read deadline expires
  (``TimeoutError``, exactly what ``socket.settimeout`` would raise);
* ``DRIP``  — bytes arrive one tiny chunk at a time, so a frame read
  that assumed one ``recv`` per field would mis-parse (a correct client
  loops; the drip proves it).

:class:`FlakySocketFactory` plugs into
:class:`~repro.service.server.ServiceClient`'s ``socket_factory`` hook
and draws a seeded fault for each of the first ``faulty_connections``
connections, then hands out clean sockets — so a client with retries
always converges, and a client without them demonstrably does not.
"""

from __future__ import annotations

import enum
import random
import socket
from dataclasses import dataclass
from typing import Any

__all__ = [
    "NetFaultKind",
    "NetFault",
    "FlakyConnection",
    "FlakySocketFactory",
]


class NetFaultKind(enum.Enum):
    RESET = "reset"  # ConnectionResetError after N received bytes
    STALL = "stall"  # read deadline expires after N received bytes
    DRIP = "drip"  # bytes arrive `chunk` at a time (no failure)


@dataclass(frozen=True)
class NetFault:
    """One connection-scoped fault: what goes wrong and where."""

    kind: NetFaultKind
    after_bytes: int = 0  # receive-stream position for RESET / STALL
    chunk: int = 1  # DRIP granularity


class FlakyConnection:
    """A socket wrapper that injects one seeded receive-path fault."""

    def __init__(self, sock: socket.socket, fault: NetFault | None = None):
        self._sock = sock
        self.fault = fault
        self.rx_bytes = 0

    def sendall(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv(self, n: int) -> bytes:
        f = self.fault
        if f is not None and f.kind is not NetFaultKind.DRIP:
            if self.rx_bytes >= f.after_bytes:
                self.fault = None  # one shot per connection
                self._sock.close()
                if f.kind is NetFaultKind.RESET:
                    raise ConnectionResetError(
                        "injected connection reset "
                        f"after {self.rx_bytes} bytes"
                    )
                raise TimeoutError(
                    f"injected stalled read after {self.rx_bytes} bytes"
                )
        if f is not None and f.kind is NetFaultKind.DRIP:
            n = min(n, max(1, f.chunk))
        data = self._sock.recv(n)
        self.rx_bytes += len(data)
        return data

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        self._sock.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._sock, name)


class FlakySocketFactory:
    """Seeded per-connection fault draws for a :class:`ServiceClient`.

    The first ``faulty_connections`` sockets each carry one fault drawn
    from ``kinds``; later connections are clean.  ``connections`` counts
    every socket handed out (the client's reconnect telemetry in tests).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        faulty_connections: int = 1,
        kinds: tuple[NetFaultKind, ...] = (
            NetFaultKind.RESET, NetFaultKind.STALL, NetFaultKind.DRIP,
        ),
        max_after_bytes: int = 64,
    ) -> None:
        self._rng = random.Random(seed)
        self.faulty_connections = faulty_connections
        self.kinds = kinds
        self.max_after_bytes = max_after_bytes
        self.connections = 0
        self.faults_injected: list[NetFault] = []

    def __call__(
        self, host: str, port: int, timeout: float | None
    ) -> FlakyConnection:
        sock = socket.create_connection((host, port), timeout=timeout)
        self.connections += 1
        fault = None
        if self.connections <= self.faulty_connections:
            kind = self.kinds[self._rng.randrange(len(self.kinds))]
            fault = NetFault(
                kind=kind,
                after_bytes=self._rng.randrange(self.max_after_bytes + 1),
                chunk=1 + self._rng.randrange(3),
            )
            self.faults_injected.append(fault)
        return FlakyConnection(sock, fault)
