"""Chaos harness: randomized fault schedules, invariant assertions.

The unit tests kill a ``put`` at every single filesystem step; the chaos
harness complements them with *breadth*: hundreds of seeded schedules
drawn over fault kind × step × crash-resolution randomness, each run
checked against the same invariants.  A failing run prints as one line —
``suite=store seed=1234 run=57`` — and replays deterministically from
exactly those numbers.

Store suite (one run)
    Start from a clean two-dataset store, attempt an update ``put``
    under a :class:`~repro.faults.fsim.CrashFS` carrying one seeded
    fault, then pull the power (``crash_and_restore``) and reopen with
    the real filesystem.  Invariants:

    * ``reopen-clean``          — recovery never raises;
    * ``bystander-intact``      — the untouched dataset reads bit-exact;
    * ``acked-durable``         — an acked put survives the power cut
      (waived when the one fault was a lying fsync — see
      ``docs/RESILIENCE.md`` on the single-lying-fsync scope);
    * ``interrupted-invisible`` — a put killed *before its commit point*
      (the journal-entry unlink) leaves the old value; a crash inside
      the commit window may resolve either way — the lost-ack case,
      which is why the service pairs this with idempotent request ids;
    * ``old-or-new``            — the target is bit-exact old *or* new,
      never a hybrid;
    * ``fsck-converges``        — ``fsck(repair=True)`` then ``fsck()``
      ends at zero findings; when the one fault was a lying fsync the
      store may instead hold *detected* damage (fsck reports it) —
      never a silent wrong answer.

Service suite (one run)
    A live server (thread pool) is driven through a client whose first
    connections carry seeded wire faults (reset / stall / drip).
    Invariants: every request eventually succeeds bit-exactly
    (``converges``), and no request executes twice despite retries
    (``at-most-once``, via the server's completed-job counters).
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import ReproError, SimulatedCrash, StoreError
from .fsim import CrashFS, FsFault, FsFaultKind
from .netsim import FlakySocketFactory

__all__ = ["ChaosViolation", "ChaosReport", "ChaosHarness"]

#: Steps an update put can take is ~21; drawing up to a slightly larger
#: ceiling also exercises schedules that miss entirely (the clean path
#: followed by a power cut — which must preserve the acked put).
_MAX_STEP = 26

_STORE_KINDS = (
    FsFaultKind.CRASH,
    FsFaultKind.TORN_WRITE,
    FsFaultKind.FAIL_RENAME,
    FsFaultKind.ENOSPC,
    FsFaultKind.DROP_FSYNC,
)


@dataclass(frozen=True)
class ChaosViolation:
    """One broken invariant: which run, which promise, what happened."""

    suite: str
    seed: int
    run: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.suite} seed={self.seed} run={self.run}] "
            f"{self.invariant}: {self.detail}"
        )


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one sweep: coverage counters plus every violation."""

    suite: str
    seed: int
    runs: int
    faults_fired: Mapping[str, int]
    violations: tuple[ChaosViolation, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        cov = ", ".join(
            f"{k}={v}" for k, v in sorted(self.faults_fired.items())
        ) or "none fired"
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"chaos {self.suite}: {status} over {self.runs} schedule(s) "
            f"(seed {self.seed}; fired: {cov})"
        )

    def assert_clean(self) -> None:
        if self.ok:
            return
        lines = [f"  {v}" for v in self.violations[:8]]
        raise AssertionError(
            f"{len(self.violations)} chaos violation(s):\n" + "\n".join(lines)
        )


class ChaosHarness:
    """Runs seeded fault-schedule sweeps and checks the invariants."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def _run_seed(self, run: int) -> int:
        # distinct, stable stream per run; avoids Random(tuple) hashing.
        return self.seed * 1_000_003 + run

    # -- store suite ------------------------------------------------------

    def run_store(self, work_dir: str | Path, *, runs: int = 200) -> ChaosReport:
        """Sweep ``runs`` crash schedules over the array store."""
        from ..store import ArrayStore

        work = Path(work_dir)
        work.mkdir(parents=True, exist_ok=True)
        template = work / "template"
        rng0 = np.random.default_rng(self.seed)
        keep = rng0.normal(size=(8, 12)).astype(np.float32)
        old = rng0.normal(size=(8, 12)).astype(np.float32)
        base = ArrayStore(template)
        base.put("keep", keep, "sz10", n_tiles=2)
        base.put("target", old, "sz10", n_tiles=2)
        keep_val = base.read("keep").data
        old_val = base.read("target").data

        violations: list[ChaosViolation] = []
        fired: dict[str, int] = {}
        scratch = work / "scratch"
        for run in range(runs):
            rs = self._run_seed(run)
            rng = random.Random(rs)
            shutil.rmtree(scratch, ignore_errors=True)
            shutil.copytree(template, scratch)
            # shift far beyond the error bound so old and new quantize to
            # visibly different stored values.
            new = (
                old + np.float32(1.0 + rng.randrange(1000)) / 16.0
            ).astype(np.float32)
            fault = FsFault(
                kind=_STORE_KINDS[rng.randrange(len(_STORE_KINDS))],
                step=1 + rng.randrange(_MAX_STEP),
                seed=rng.getrandbits(31),
            )
            fs = CrashFS(scratch, schedule=(fault,), seed=rs)

            def bad(invariant: str, detail: str, _run: int = run) -> None:
                violations.append(ChaosViolation(
                    "store", self.seed, _run, invariant, detail
                ))

            # the value an undisturbed put of `new` stores (the lossy
            # round-trip) — computed on a clean copy so the fault run
            # has a bit-exact reference even when it dies mid-put.
            expected = work / "expected"
            shutil.rmtree(expected, ignore_errors=True)
            shutil.copytree(template, expected)
            clean = ArrayStore(expected)
            clean.put("target", new, "sz10", n_tiles=2)
            new_val = clean.read("target").data

            acked = False
            try:
                store = ArrayStore(scratch, fs=fs)
                store.put("target", new, "sz10", n_tiles=2)
                acked = True
            except SimulatedCrash:
                pass
            except StoreError:
                pass  # survivable fault: put failed and rolled back
            # once the journal-entry unlink has been issued, the put is
            # inside its commit window: a crash there may land old or
            # new (the classic lost ack), both legitimate.
            committing = any(
                op == "unlink" and os.sep + "journal" + os.sep in key
                for op, key in fs.ops
            )
            for f in fs.fired:
                fired[f.kind.value] = fired.get(f.kind.value, 0) + 1
            lying = any(
                f.kind is FsFaultKind.DROP_FSYNC for f in fs.fired
            )
            # pull the power, then come back up on the real filesystem.
            fs.crash_and_restore(rng.getrandbits(31))
            try:
                after = ArrayStore(scratch)
            except ReproError as exc:
                bad("reopen-clean", f"{type(exc).__name__}: {exc}")
                continue
            try:
                keep_now = after.read("keep").data
                if not np.array_equal(keep_now, keep_val):
                    bad(
                        "bystander-intact",
                        "'keep' changed across the crash",
                    )
            except ReproError as exc:
                bad("bystander-intact", f"{type(exc).__name__}: {exc}")
            detected_loss = False
            try:
                target = after.read("target").data
            except ReproError as exc:
                # with a lying disk an acked put may be lost — but never
                # silently: the checksum walk detects it.  Any other
                # schedule must leave the target readable.
                target = None
                if lying:
                    detected_loss = True
                else:
                    bad(
                        "old-or-new",
                        f"target unreadable: {type(exc).__name__}: {exc}",
                    )
            if target is not None:
                is_old = np.array_equal(target, old_val)
                is_new = np.array_equal(target, new_val)
                if not (is_old or is_new):
                    bad(
                        "old-or-new",
                        "'target' is neither old nor new value",
                    )
                elif acked and not lying and not is_new:
                    bad("acked-durable", "acked put lost after power cut")
                elif not acked and not committing and not is_old:
                    bad(
                        "interrupted-invisible",
                        "pre-commit put became visible after recovery",
                    )
            after.fsck(repair=True)
            check = after.fsck(deep=True)
            if not check.ok and not lying:
                bad("fsck-converges", check.summary())
            if detected_loss and not check.errors:
                bad(
                    "fsck-converges",
                    "target unreadable but fsck reports no error",
                )
        shutil.rmtree(scratch, ignore_errors=True)
        return ChaosReport(
            "store", self.seed, runs, fired, tuple(violations)
        )

    # -- service suite ----------------------------------------------------

    def run_service(self, *, runs: int = 6, ops_per_run: int = 4) -> ChaosReport:
        """Sweep flaky-wire schedules against a live server."""
        import asyncio
        import threading

        from ..codec.registry import get_codec
        from ..service import (
            CompressionServer,
            RetryPolicy,
            ServiceClient,
        )

        violations: list[ChaosViolation] = []
        fired: dict[str, int] = {}
        rng0 = np.random.default_rng(self.seed)
        fld = rng0.normal(size=(8, 12)).astype(np.float32)
        direct = get_codec("sz10").compress(fld, 1e-3, "vr_rel").payload

        loop = asyncio.new_event_loop()
        srv = CompressionServer(port=0, workers=2, pool_kind="thread")
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        if not started.wait(10):  # pragma: no cover - startup failure
            raise RuntimeError("chaos service failed to start")
        try:
            for run in range(runs):
                rs = self._run_seed(run)
                factory = FlakySocketFactory(
                    seed=rs, faulty_connections=1 + rs % 2,
                    max_after_bytes=48,
                )
                before = srv.scheduler.stats().totals.get("completed", 0)
                try:
                    client = ServiceClient(
                        port=srv.port, timeout=2.0,
                        retry=RetryPolicy(attempts=6, base_s=0.01, seed=rs),
                        socket_factory=factory,
                    )
                    with client:
                        for _ in range(ops_per_run):
                            payload, _info = client.compress(
                                fld, "sz10", eb=1e-3
                            )
                            if payload != direct:
                                violations.append(ChaosViolation(
                                    "service", self.seed, run, "converges",
                                    "payload differs from the direct path",
                                ))
                except ReproError as exc:
                    violations.append(ChaosViolation(
                        "service", self.seed, run, "converges",
                        f"{type(exc).__name__}: {exc}",
                    ))
                for f in factory.faults_injected:
                    fired[f.kind.value] = fired.get(f.kind.value, 0) + 1
                after = srv.scheduler.stats().totals.get("completed", 0)
                # DRIP never aborts a request, so every op runs exactly
                # once; RESET/STALL retries must dedup via request ids.
                if after - before > ops_per_run:
                    violations.append(ChaosViolation(
                        "service", self.seed, run, "at-most-once",
                        f"{after - before} executions for "
                        f"{ops_per_run} request(s)",
                    ))
        finally:
            asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
        return ChaosReport(
            "service", self.seed, runs, fired, tuple(violations)
        )
