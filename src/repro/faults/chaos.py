"""Chaos harness: randomized fault schedules, invariant assertions.

The unit tests kill a ``put`` at every single filesystem step; the chaos
harness complements them with *breadth*: hundreds of seeded schedules
drawn over fault kind × step × crash-resolution randomness, each run
checked against the same invariants.  A failing run prints as one line —
``suite=store seed=1234 run=57`` — and replays deterministically from
exactly those numbers.

Store suite (one run)
    Start from a clean two-dataset store, attempt an update ``put``
    under a :class:`~repro.faults.fsim.CrashFS` carrying one seeded
    fault, then pull the power (``crash_and_restore``) and reopen with
    the real filesystem.  Invariants:

    * ``reopen-clean``          — recovery never raises;
    * ``bystander-intact``      — the untouched dataset reads bit-exact;
    * ``acked-durable``         — an acked put survives the power cut
      (waived when the one fault was a lying fsync — see
      ``docs/RESILIENCE.md`` on the single-lying-fsync scope);
    * ``interrupted-invisible`` — a put killed *before its commit point*
      (the journal-entry unlink) leaves the old value; a crash inside
      the commit window may resolve either way — the lost-ack case,
      which is why the service pairs this with idempotent request ids;
    * ``old-or-new``            — the target is bit-exact old *or* new,
      never a hybrid;
    * ``fsck-converges``        — ``fsck(repair=True)`` then ``fsck()``
      ends at zero findings; when the one fault was a lying fsync the
      store may instead hold *detected* damage (fsck reports it) —
      never a silent wrong answer.

Service suite (one run)
    A live server (thread pool) is driven through a client whose first
    connections carry seeded wire faults (reset / stall / drip).
    Invariants: every request eventually succeeds bit-exactly
    (``converges``), and no request executes twice despite retries
    (``at-most-once``, via the server's completed-job counters).
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import ReproError, SimulatedCrash, StoreError
from .fsim import CrashFS, FsFault, FsFaultKind
from .netsim import FlakySocketFactory

__all__ = ["ChaosViolation", "ChaosReport", "ChaosHarness"]

#: Steps an update put can take is ~21; drawing up to a slightly larger
#: ceiling also exercises schedules that miss entirely (the clean path
#: followed by a power cut — which must preserve the acked put).
_MAX_STEP = 26

_STORE_KINDS = (
    FsFaultKind.CRASH,
    FsFaultKind.TORN_WRITE,
    FsFaultKind.FAIL_RENAME,
    FsFaultKind.ENOSPC,
    FsFaultKind.DROP_FSYNC,
)


@dataclass(frozen=True)
class ChaosViolation:
    """One broken invariant: which run, which promise, what happened."""

    suite: str
    seed: int
    run: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.suite} seed={self.seed} run={self.run}] "
            f"{self.invariant}: {self.detail}"
        )


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one sweep: coverage counters plus every violation."""

    suite: str
    seed: int
    runs: int
    faults_fired: Mapping[str, int]
    violations: tuple[ChaosViolation, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        cov = ", ".join(
            f"{k}={v}" for k, v in sorted(self.faults_fired.items())
        ) or "none fired"
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"chaos {self.suite}: {status} over {self.runs} schedule(s) "
            f"(seed {self.seed}; fired: {cov})"
        )

    def assert_clean(self) -> None:
        if self.ok:
            return
        lines = [f"  {v}" for v in self.violations[:8]]
        raise AssertionError(
            f"{len(self.violations)} chaos violation(s):\n" + "\n".join(lines)
        )


class ChaosHarness:
    """Runs seeded fault-schedule sweeps and checks the invariants."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed

    def _run_seed(self, run: int) -> int:
        # distinct, stable stream per run; avoids Random(tuple) hashing.
        return self.seed * 1_000_003 + run

    # -- store suite ------------------------------------------------------

    def run_store(self, work_dir: str | Path, *, runs: int = 200) -> ChaosReport:
        """Sweep ``runs`` crash schedules over the array store."""
        from ..store import ArrayStore

        work = Path(work_dir)
        work.mkdir(parents=True, exist_ok=True)
        template = work / "template"
        rng0 = np.random.default_rng(self.seed)
        keep = rng0.normal(size=(8, 12)).astype(np.float32)
        old = rng0.normal(size=(8, 12)).astype(np.float32)
        base = ArrayStore(template)
        base.put("keep", keep, "sz10", n_tiles=2)
        base.put("target", old, "sz10", n_tiles=2)
        keep_val = base.read("keep").data
        old_val = base.read("target").data

        violations: list[ChaosViolation] = []
        fired: dict[str, int] = {}
        scratch = work / "scratch"
        for run in range(runs):
            rs = self._run_seed(run)
            rng = random.Random(rs)
            shutil.rmtree(scratch, ignore_errors=True)
            shutil.copytree(template, scratch)
            # shift far beyond the error bound so old and new quantize to
            # visibly different stored values.
            new = (
                old + np.float32(1.0 + rng.randrange(1000)) / 16.0
            ).astype(np.float32)
            fault = FsFault(
                kind=_STORE_KINDS[rng.randrange(len(_STORE_KINDS))],
                step=1 + rng.randrange(_MAX_STEP),
                seed=rng.getrandbits(31),
            )
            fs = CrashFS(scratch, schedule=(fault,), seed=rs)

            def bad(invariant: str, detail: str, _run: int = run) -> None:
                violations.append(ChaosViolation(
                    "store", self.seed, _run, invariant, detail
                ))

            # the value an undisturbed put of `new` stores (the lossy
            # round-trip) — computed on a clean copy so the fault run
            # has a bit-exact reference even when it dies mid-put.
            expected = work / "expected"
            shutil.rmtree(expected, ignore_errors=True)
            shutil.copytree(template, expected)
            clean = ArrayStore(expected)
            clean.put("target", new, "sz10", n_tiles=2)
            new_val = clean.read("target").data

            acked = False
            try:
                store = ArrayStore(scratch, fs=fs)
                store.put("target", new, "sz10", n_tiles=2)
                acked = True
            except SimulatedCrash:
                pass
            except StoreError:
                pass  # survivable fault: put failed and rolled back
            # once the journal-entry unlink has been issued, the put is
            # inside its commit window: a crash there may land old or
            # new (the classic lost ack), both legitimate.
            committing = any(
                op == "unlink" and os.sep + "journal" + os.sep in key
                for op, key in fs.ops
            )
            for f in fs.fired:
                fired[f.kind.value] = fired.get(f.kind.value, 0) + 1
            lying = any(
                f.kind is FsFaultKind.DROP_FSYNC for f in fs.fired
            )
            # pull the power, then come back up on the real filesystem.
            fs.crash_and_restore(rng.getrandbits(31))
            try:
                after = ArrayStore(scratch)
            except ReproError as exc:
                bad("reopen-clean", f"{type(exc).__name__}: {exc}")
                continue
            try:
                keep_now = after.read("keep").data
                if not np.array_equal(keep_now, keep_val):
                    bad(
                        "bystander-intact",
                        "'keep' changed across the crash",
                    )
            except ReproError as exc:
                bad("bystander-intact", f"{type(exc).__name__}: {exc}")
            detected_loss = False
            try:
                target = after.read("target").data
            except ReproError as exc:
                # with a lying disk an acked put may be lost — but never
                # silently: the checksum walk detects it.  Any other
                # schedule must leave the target readable.
                target = None
                if lying:
                    detected_loss = True
                else:
                    bad(
                        "old-or-new",
                        f"target unreadable: {type(exc).__name__}: {exc}",
                    )
            if target is not None:
                is_old = np.array_equal(target, old_val)
                is_new = np.array_equal(target, new_val)
                if not (is_old or is_new):
                    bad(
                        "old-or-new",
                        "'target' is neither old nor new value",
                    )
                elif acked and not lying and not is_new:
                    bad("acked-durable", "acked put lost after power cut")
                elif not acked and not committing and not is_old:
                    bad(
                        "interrupted-invisible",
                        "pre-commit put became visible after recovery",
                    )
            after.fsck(repair=True)
            check = after.fsck(deep=True)
            if not check.ok and not lying:
                bad("fsck-converges", check.summary())
            if detected_loss and not check.errors:
                bad(
                    "fsck-converges",
                    "target unreadable but fsck reports no error",
                )
        shutil.rmtree(scratch, ignore_errors=True)
        return ChaosReport(
            "store", self.seed, runs, fired, tuple(violations)
        )

    # -- service suite ----------------------------------------------------

    def run_service(
        self, *, runs: int = 6, ops_per_run: int = 4, kill_runs: int = 2
    ) -> ChaosReport:
        """Sweep flaky-wire schedules against a live server, then SIGKILL
        process-pool workers holding shared-memory leases.

        The wire phase checks ``converges`` / ``at-most-once`` as before.
        The kill phase (skipped where shared memory is unavailable) runs
        a process-pool scheduler on the shm transport, SIGKILLs a worker
        while jobs are in flight — i.e. mid-lease — and checks:

        * ``converges-after-kill`` — every job still completes with the
          byte-exact direct-path payload (the broken pool respawns and
          the transient retry re-dispatches);
        * ``lease-reclaimed``     — after the batch drains no segment
          is leased, and after ``stop()`` the arena is empty: a killed
          worker cannot strand ``/dev/shm``.
        """
        import asyncio
        import threading

        from ..codec.registry import get_codec
        from ..service import (
            CompressionServer,
            RetryPolicy,
            ServiceClient,
        )

        violations: list[ChaosViolation] = []
        fired: dict[str, int] = {}
        rng0 = np.random.default_rng(self.seed)
        fld = rng0.normal(size=(8, 12)).astype(np.float32)
        direct = get_codec("sz10").compress(fld, 1e-3, "vr_rel").payload

        loop = asyncio.new_event_loop()
        srv = CompressionServer(port=0, workers=2, pool_kind="thread")
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        if not started.wait(10):  # pragma: no cover - startup failure
            raise RuntimeError("chaos service failed to start")
        try:
            for run in range(runs):
                rs = self._run_seed(run)
                factory = FlakySocketFactory(
                    seed=rs, faulty_connections=1 + rs % 2,
                    max_after_bytes=48,
                )
                before = srv.scheduler.stats().totals.get("completed", 0)
                try:
                    client = ServiceClient(
                        port=srv.port, timeout=2.0,
                        retry=RetryPolicy(attempts=6, base_s=0.01, seed=rs),
                        socket_factory=factory,
                    )
                    with client:
                        for _ in range(ops_per_run):
                            payload, _info = client.compress(
                                fld, "sz10", eb=1e-3
                            )
                            if payload != direct:
                                violations.append(ChaosViolation(
                                    "service", self.seed, run, "converges",
                                    "payload differs from the direct path",
                                ))
                except ReproError as exc:
                    violations.append(ChaosViolation(
                        "service", self.seed, run, "converges",
                        f"{type(exc).__name__}: {exc}",
                    ))
                for f in factory.faults_injected:
                    fired[f.kind.value] = fired.get(f.kind.value, 0) + 1
                after = srv.scheduler.stats().totals.get("completed", 0)
                # DRIP never aborts a request, so every op runs exactly
                # once; RESET/STALL retries must dedup via request ids.
                if after - before > ops_per_run:
                    violations.append(ChaosViolation(
                        "service", self.seed, run, "at-most-once",
                        f"{after - before} executions for "
                        f"{ops_per_run} request(s)",
                    ))
        finally:
            asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
        for kill_run in range(kill_runs):
            self._service_kill_run(runs + kill_run, violations, fired)
        return ChaosReport(
            "service", self.seed, runs + kill_runs, fired, tuple(violations)
        )

    def _service_kill_run(
        self, run: int, violations: list[ChaosViolation], fired: dict[str, int]
    ) -> None:
        """One SIGKILL-mid-lease schedule (see :meth:`run_service`)."""
        import asyncio
        import signal

        from ..codec.registry import get_codec
        from ..service import BatchScheduler
        from ..service.jobs import make_job
        from ..service.shm import ShmArena

        if not ShmArena.available():  # pragma: no cover - no /dev/shm
            return

        def bad(invariant: str, detail: str) -> None:
            violations.append(ChaosViolation(
                "service", self.seed, run, invariant, detail
            ))

        rs = self._run_seed(run)
        rng = np.random.default_rng(rs)
        # comfortably above SHM_MIN_BYTES so every job leases a segment
        fld = rng.normal(size=(160, 160)).astype(np.float32)
        direct = get_codec("sz10").compress(fld, 1e-3, "vr_rel").payload
        fired["worker-kill"] = fired.get("worker-kill", 0) + 1

        async def drive() -> None:
            sched = BatchScheduler(
                workers=2, pool_kind="process", max_retries=4,
                backoff_base_s=0.01, transport="shm",
            )
            sched.start()
            try:
                handles = [
                    await sched.submit(
                        make_job("sz10", fld, eb=1e-3), block=True
                    )
                    for _ in range(4)
                ]
                # let dispatch copy fields into segments and hand out
                # leases, then kill one worker mid-lease.
                await asyncio.sleep(0.02 + 0.02 * (rs % 3))
                procs = list(getattr(
                    sched.pool.executor, "_processes", {}
                ).values())
                if procs:
                    victim = procs[rs % len(procs)]
                    try:
                        os.kill(victim.pid, signal.SIGKILL)
                    except (OSError, TypeError):  # pragma: no cover
                        pass
                for h in handles:
                    try:
                        result = await sched.wait(h)
                    except ReproError as exc:
                        bad(
                            "converges-after-kill",
                            f"job failed after worker kill: "
                            f"{type(exc).__name__}: {exc}",
                        )
                        continue
                    if result.output != direct:
                        bad(
                            "converges-after-kill",
                            "payload differs from the direct path "
                            "after worker kill",
                        )
                arena = sched.transport.arena
                if arena.leased_segments:
                    bad(
                        "lease-reclaimed",
                        f"{arena.leased_segments} segment(s) still "
                        "leased after the batch drained",
                    )
            finally:
                await sched.stop()
            arena = sched.transport.arena
            if arena.resident_bytes:
                bad(
                    "lease-reclaimed",
                    f"{arena.resident_bytes} bytes still resident "
                    "after stop()",
                )
            stranded = [
                entry for entry in (
                    os.listdir("/dev/shm") if os.path.isdir("/dev/shm")
                    else []
                )
                if entry.startswith(arena.prefix)
            ]
            if stranded:
                bad(
                    "lease-reclaimed",
                    f"stranded shm segment(s): {stranded}",
                )

        asyncio.run(drive())

    # -- shard suite ------------------------------------------------------

    def run_shard(
        self, work_dir: str | Path, *, runs: int = 6
    ) -> ChaosReport:
        """Sweep shard-loss and flaky-wire schedules over a 3-shard /
        replicas=2 cluster.

        Each run cycles one of three phases against a seeded victim
        shard and checks the distributed-store promises:

        * ``old-or-new``       — a put interrupted by wire faults leaves
          a read returning bit-exact version 1 *or* version 2, never a
          hybrid;
        * ``acked-durable``    — a put that returned survives gateway
          turnover and shard restarts;
        * ``degraded-ack``     — with one shard down, puts still ack
          (every tile keeps >= 1 replica);
        * ``reads-converge``   — with one shard down (and, in the wire
          phase, flaky sockets on top), full and windowed reads return
          the acked bytes;
        * ``read-repair-converges`` — after the victim returns, one full
          read restores every tile object and manifest replica the
          victim owns, verified directly against its store directory.
        """
        import json as _json
        from pathlib import Path as _P

        from ..shard import LocalShardCluster, manifest_key

        work_dir = _P(work_dir)
        violations: list[ChaosViolation] = []
        fired: dict[str, int] = {}
        phases = ("wire-mid-put", "down-before-put", "down-mid-read")
        for run in range(runs):
            rs = self._run_seed(run)
            rng = np.random.default_rng(rs)
            phase = phases[run % len(phases)]
            fired[phase] = fired.get(phase, 0) + 1
            victim = int(rng.integers(0, 3))
            scratch = work_dir / f"shard-run{run}"
            roots = [scratch / f"s{i}" for i in range(3)]

            def bad(invariant: str, detail: str, _run: int = run) -> None:
                violations.append(ChaosViolation(
                    "shard", self.seed, _run, invariant, detail
                ))

            f1 = rng.normal(size=(24, 32)).astype(np.float32)
            f2 = (f1 * 1.5 + rng.normal(size=(24, 32))).astype(np.float32)
            with LocalShardCluster(roots, replicas=2) as cluster:
                gw = cluster.gateway()
                try:
                    gw.put("d.ts", f1, "sz14", 1e-3, n_tiles=4)
                    v1 = gw.read("d.ts").data
                except ReproError as exc:
                    bad("acked-durable", f"clean baseline put failed: {exc}")
                    gw.close()
                    continue

                acked = None
                if phase == "wire-mid-put":
                    flaky = cluster.gateway(
                        timeout=2.0,
                        socket_factory=FlakySocketFactory(
                            seed=rs, faulty_connections=1 + rs % 2,
                            max_after_bytes=64,
                        ),
                    )
                    try:
                        acked = flaky.put("d.ts", f2, "sz14", 1e-3, n_tiles=4)
                    except ReproError:
                        acked = None  # old-or-new checked below either way
                    finally:
                        flaky.close()
                elif phase == "down-before-put":
                    cluster.stop_shard(victim)
                    try:
                        acked = gw.put("d.ts", f2, "sz14", 1e-3, n_tiles=4)
                        if not acked.degraded:
                            bad("degraded-ack",
                                "put with a shard down not flagged degraded")
                    except ReproError as exc:
                        bad("degraded-ack",
                            f"put with one of 3 shards down refused: {exc}")
                else:  # down-mid-read
                    try:
                        acked = gw.put("d.ts", f2, "sz14", 1e-3, n_tiles=4)
                    except ReproError as exc:
                        bad("acked-durable", f"clean put failed: {exc}")
                    cluster.stop_shard(victim)

                # reads while (possibly) degraded — fresh gateway, no cache
                reader = cluster.gateway(
                    timeout=2.0,
                    socket_factory=(
                        FlakySocketFactory(
                            seed=rs + 1, faulty_connections=1,
                            max_after_bytes=64,
                        ) if phase == "down-mid-read" else None
                    ),
                )
                got = None
                try:
                    got = reader.read("d.ts").data
                    is_v1 = np.array_equal(got, v1)
                    if acked is not None:
                        # the update was acked: the old version is gone
                        if is_v1:
                            bad("acked-durable",
                                "read returned the old version after an "
                                "acked update put")
                    elif not is_v1:
                        # no ack: the new bytes are allowed too, but a
                        # hybrid is not — reads must be self-consistent.
                        again = reader.read("d.ts").data
                        if not np.array_equal(got, again):
                            bad("old-or-new",
                                "two reads of the same version disagree")
                    window = (slice(3, 17), slice(5, 29))
                    sl = reader.read_slice("d.ts", window).data
                    if not np.array_equal(sl, got[window]):
                        bad("reads-converge",
                            "windowed read disagrees with the full read")
                except ReproError as exc:
                    bad("reads-converge",
                        f"{phase}: read with cluster degraded failed: {exc}")
                finally:
                    reader.close()

                # victim returns: one full read must re-converge replicas
                if phase in ("down-before-put", "down-mid-read"):
                    cluster.start_shard(victim)
                    repairer = cluster.gateway()
                    try:
                        healed = repairer.read("d.ts").data
                        if (
                            acked is not None and got is not None
                            and not np.array_equal(healed, got)
                        ):
                            bad("acked-durable",
                                "read after victim restart lost the "
                                "acked bytes")
                        if acked is not None:
                            vid = cluster.shard_id(victim)
                            ring = repairer.ring
                            vroot = roots[victim]
                            for d in acked.tile_digests:
                                if vid in ring.owners(d, 2) and not (
                                    vroot / "objects" / d
                                ).exists():
                                    bad("read-repair-converges",
                                        f"tile {d[:12]}... not restored "
                                        f"to shard {victim}")
                            if vid in ring.owners(manifest_key("d.ts"), 2):
                                mp = vroot / "manifests" / "d.ts.json"
                                if not mp.exists():
                                    bad("read-repair-converges",
                                        "manifest replica not restored")
                                elif (
                                    _json.loads(mp.read_text())
                                    .get("version") != acked.version
                                ):
                                    bad("read-repair-converges",
                                        "manifest replica restored at a "
                                        "stale version")
                    except ReproError as exc:
                        bad("read-repair-converges",
                            f"read after victim restart failed: {exc}")
                    finally:
                        repairer.close()
                gw.close()
            shutil.rmtree(scratch, ignore_errors=True)
        return ChaosReport(
            "shard", self.seed, runs, fired, tuple(violations)
        )
