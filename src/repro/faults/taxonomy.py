"""Transient-vs-permanent classification of the error taxonomy.

The fault-injection sweeps (:mod:`repro.faults.harness`) established *what*
can go wrong when payloads are damaged; the batch service needs to know
*whether retrying helps*.  This module draws that line once so the
scheduler, the server and the CLI all agree:

* **transient** — environmental damage that a retry can plausibly clear:
  a checksum mismatch (bit rot on one read, torn write), an injected
  fault from the test harness, OS-level I/O errors, timeouts, a broken
  or hung worker process (the pool respawns workers between attempts),
  and a wire failure mid-request (the client reconnects and retries).
* **permanent** — structural problems retrying cannot fix: invalid
  configuration, unsupported shapes/dtypes, unknown datasets, and
  malformed containers whose checksums *do* verify (the bytes really are
  that way).

``ChecksumError`` is deliberately classified before its base class
``ContainerError``: a failed CRC means the bytes differ from what was
written (re-read may succeed), while a well-checksummed-but-unparseable
container is permanently bad.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

from ..errors import (
    ChecksumError,
    ConfigError,
    ContainerError,
    DatasetError,
    DTypeError,
    FaultInjectionError,
    ShapeError,
    TransportError,
    WorkerHungError,
)

__all__ = ["TRANSIENT_TYPES", "PERMANENT_TYPES", "is_transient"]

#: Checked in order; first match wins (so ``ChecksumError`` beats its base
#: class ``ContainerError`` in :data:`PERMANENT_TYPES`).
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    ChecksumError,
    FaultInjectionError,
    WorkerHungError,
    TransportError,
    BrokenExecutor,
    TimeoutError,
    ConnectionError,
    OSError,
)

PERMANENT_TYPES: tuple[type[BaseException], ...] = (
    ConfigError,
    ShapeError,
    DTypeError,
    DatasetError,
    ContainerError,
)


def is_transient(exc: BaseException) -> bool:
    """True when retrying the operation that raised ``exc`` can help.

    Unknown exception types are conservatively treated as permanent so a
    deterministic bug cannot burn the retry budget on every job.
    """
    for t in TRANSIENT_TYPES:
        if isinstance(exc, t):
            return True
    return False
