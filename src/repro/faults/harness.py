"""Differential corruption harness.

Runs a compressor's decode path over a sweep of injected faults and
classifies every outcome against the integrity contract:

* the decode **raises a** ``ReproError`` **subtype** — the damage was
  detected (``REJECTED``);
* the decode returns the pristine reconstruction bit-exactly — the fault
  landed somewhere redundant (``INTACT``);
* the decode returns *different* data that **fails the error bound**
  against the original — detectable by verification (``DETECTED``);
* the decode returns different data that *passes* the bound — a silent
  wrong answer (``SILENT``, contract violation);
* the decode raises anything outside the ``ReproError`` hierarchy — a
  crash leak (``CRASHED``, contract violation).

Unbounded work is covered structurally: every decode loop is bounded by
validated header counts, so a sweep that terminates is itself evidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import FaultInjectionError, ReproError
from ..metrics.error import verify_error_bound
from .inject import FaultInjector, FaultSpec

__all__ = ["FaultOutcome", "SweepRecord", "SweepResult", "corruption_sweep"]


class FaultOutcome(enum.Enum):
    REJECTED = "rejected"  # raised a ReproError subtype
    INTACT = "intact"  # reconstruction unchanged by the fault
    DETECTED = "detected"  # wrong data, but fails bound verification
    SILENT = "silent"  # wrong data that passes verification — violation
    CRASHED = "crashed"  # non-ReproError escaped — violation


@dataclass(frozen=True)
class SweepRecord:
    """One fault and what the decode path did with it."""

    spec: FaultSpec
    outcome: FaultOutcome
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome not in (FaultOutcome.SILENT, FaultOutcome.CRASHED)


@dataclass(frozen=True)
class SweepResult:
    """Every record of one sweep plus contract bookkeeping."""

    variant: str
    records: tuple[SweepRecord, ...]

    @property
    def violations(self) -> tuple[SweepRecord, ...]:
        return tuple(r for r in self.records if not r.ok)

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, outcome: FaultOutcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    def summary(self) -> str:
        parts = ", ".join(
            f"{o.value}={self.count(o)}" for o in FaultOutcome if self.count(o)
        )
        return f"{self.variant}: {len(self.records)} faults ({parts})"

    def assert_contract(self) -> None:
        """Raise ``FaultInjectionError`` describing the first violations."""
        if self.ok:
            return
        lines = [
            f"{r.outcome.value}: {r.spec} — {r.detail}"
            for r in self.violations[:5]
        ]
        raise FaultInjectionError(
            f"{self.variant}: {len(self.violations)} integrity violation(s) "
            f"in {len(self.records)} faults:\n" + "\n".join(lines)
        )


def _classify(
    compressor,
    damaged: bytes,
    original: np.ndarray,
    reference: np.ndarray,
    bound: float,
) -> tuple[FaultOutcome, str]:
    try:
        out = compressor.decompress(damaged)
    except ReproError as exc:
        return FaultOutcome.REJECTED, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 — the leak IS the finding
        return FaultOutcome.CRASHED, f"{type(exc).__name__}: {exc}"
    if (
        out.shape == reference.shape
        and out.dtype == reference.dtype
        and np.array_equal(out, reference)
    ):
        return FaultOutcome.INTACT, ""
    if out.shape != original.shape:
        return FaultOutcome.DETECTED, f"shape changed to {out.shape}"
    if not np.all(np.isfinite(out)):
        return FaultOutcome.DETECTED, "non-finite values in output"
    if verify_error_bound(original, out, bound, raise_on_fail=False):
        return FaultOutcome.SILENT, "wrong data within the error bound"
    return FaultOutcome.DETECTED, "fails error-bound verification"


def corruption_sweep(
    compressor,
    payload: bytes,
    original: np.ndarray,
    bound: float,
    *,
    n: int = 200,
    seed: int = 0,
) -> SweepResult:
    """Inject ``n`` seeded faults into ``payload`` and classify each decode.

    ``original`` is the uncompressed field; ``bound`` the absolute error
    bound it was compressed under.  The pristine payload must decompress
    and satisfy the bound before the sweep starts (a broken baseline would
    make every classification meaningless).
    """
    reference = compressor.decompress(payload)
    verify_error_bound(original, reference, bound)

    injector = FaultInjector(seed)
    records = [
        SweepRecord(
            spec,
            *_classify(compressor, damaged, original, reference, bound),
        )
        for spec, damaged in injector.sweep(payload, n)
    ]
    return SweepResult(variant=compressor.name, records=tuple(records))
