"""Deterministic fault injection for compressed streams.

The integrity layer's promise — *decode of damaged input either raises a*
``ReproError`` *subtype or returns data flagged as failing verification,
never a silent wrong answer and never a non-*``ReproError`` *crash* — is
only worth anything if it is exercised.  This subsystem provides the
exercise machinery:

* :class:`FaultSpec` / :func:`inject` — a declarative, reproducible
  description of one fault (bit flip, truncation, section drop/swap/
  duplicate, header mutation, garbage splice) and its application;
* :class:`FaultInjector` — a seeded generator of fault sweeps;
* :func:`corruption_sweep` — the differential harness that runs a
  compressor's decode path across a sweep and checks the contract;
* :func:`is_transient` — the transient/permanent split of the error
  taxonomy that drives the batch service's retry policy.
"""

from .inject import FaultInjector, FaultKind, FaultSpec, inject
from .harness import FaultOutcome, SweepRecord, SweepResult, corruption_sweep
from .taxonomy import PERMANENT_TYPES, TRANSIENT_TYPES, is_transient

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "inject",
    "FaultOutcome",
    "SweepRecord",
    "SweepResult",
    "corruption_sweep",
    "TRANSIENT_TYPES",
    "PERMANENT_TYPES",
    "is_transient",
]
