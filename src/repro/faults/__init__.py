"""Deterministic fault injection for compressed streams.

The integrity layer's promise — *decode of damaged input either raises a*
``ReproError`` *subtype or returns data flagged as failing verification,
never a silent wrong answer and never a non-*``ReproError`` *crash* — is
only worth anything if it is exercised.  This subsystem provides the
exercise machinery:

* :class:`FaultSpec` / :func:`inject` — a declarative, reproducible
  description of one fault (bit flip, truncation, section drop/swap/
  duplicate, header mutation, garbage splice) and its application;
* :class:`FaultInjector` — a seeded generator of fault sweeps;
* :func:`corruption_sweep` — the differential harness that runs a
  compressor's decode path across a sweep and checks the contract;
* :func:`is_transient` — the transient/permanent split of the error
  taxonomy that drives the batch service's retry policy;
* :class:`CrashFS` / :class:`FsFault` — a filesystem with a page-cache
  durability model and seeded crash/torn-write/ENOSPC/lying-fsync
  schedules (what the store's crash-recovery tests write through);
* :class:`FlakyConnection` / :class:`FlakySocketFactory` — seeded wire
  faults (reset, stall, byte drip) for the service client;
* :class:`ChaosHarness` — randomized fault-schedule sweeps over the
  store and the service, asserting the durability and at-most-once
  invariants (the ``wavesz chaos`` command).
"""

from .chaos import ChaosHarness, ChaosReport, ChaosViolation
from .fsim import CrashFS, FsFault, FsFaultKind, OsFileSystem
from .inject import FaultInjector, FaultKind, FaultSpec, inject
from .harness import FaultOutcome, SweepRecord, SweepResult, corruption_sweep
from .netsim import FlakyConnection, FlakySocketFactory, NetFault, NetFaultKind
from .taxonomy import PERMANENT_TYPES, TRANSIENT_TYPES, is_transient

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "inject",
    "FaultOutcome",
    "SweepRecord",
    "SweepResult",
    "corruption_sweep",
    "TRANSIENT_TYPES",
    "PERMANENT_TYPES",
    "is_transient",
    "OsFileSystem",
    "CrashFS",
    "FsFault",
    "FsFaultKind",
    "FlakyConnection",
    "FlakySocketFactory",
    "NetFault",
    "NetFaultKind",
    "ChaosHarness",
    "ChaosReport",
    "ChaosViolation",
]
