"""Tiled (block-parallel) compression — the OpenMP / multi-lane decomposition.

SZ's OpenMP mode and a multi-lane FPGA deployment both decompose a field
into independent bands along the slowest axis: each band compresses with
no cross-band feedback, so bands map 1:1 onto threads or PQD lanes
(Figure 8's parallelism axis).  The price is the prediction context lost
at band seams — measured by ``bench_ablation_tiling``.

Because bands are self-contained payloads, the tiled container also gives
*random access*: :func:`decompress_tile` reconstructs one band without
touching the rest, the access pattern post-analysis tools want on huge
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from .errors import ContainerError, ShapeError, decode_guard
from .io.container import Container
from .streams import header_dtype, header_int, header_shape
from .types import CompressedField, CompressionStats

__all__ = [
    "TiledResult",
    "tile_compress",
    "tile_decompress",
    "decompress_tile",
    "plan_bands",
    "assemble_tiles",
]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> CompressedField: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class TiledResult:
    """A tiled compression result: per-band payloads plus aggregates."""

    payload: bytes
    n_tiles: int
    stats: CompressionStats
    tile_ratios: tuple[float, ...]

    @property
    def ratio(self) -> float:
        return self.stats.ratio


def _band_slices(n0: int, n_tiles: int) -> list[slice]:
    if n_tiles < 1:
        raise ShapeError(f"n_tiles must be >= 1, got {n_tiles}")
    if n_tiles * 2 > n0:
        raise ShapeError(
            f"{n_tiles} tiles over a first dimension of {n0} leaves bands "
            "thinner than 2 points"
        )
    edges = np.linspace(0, n0, n_tiles + 1, dtype=int)
    return [slice(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])]


def plan_bands(
    data: np.ndarray, eb: float, mode: str, n_tiles: int
) -> tuple[Any, list[slice]]:
    """Resolve the global bound and band slices for a tiled compression.

    Shared by the serial path below and the worker-pool fan-out in
    :mod:`repro.service.workers`, so both produce identical plans.  The
    error bound is resolved *globally* (VR-REL against the full field's
    range, as SZ's OpenMP mode does) and later applied per band as an
    absolute bound, so the guarantee is identical to the monolithic
    compressor's.
    """
    if data.ndim < 2:
        raise ShapeError("tiling needs at least 2 dimensions")
    from .config import resolve_error_bound

    bound = resolve_error_bound(data, eb, mode)
    return bound, _band_slices(data.shape[0], n_tiles)


def assemble_tiles(
    inner_variant: str,
    data: np.ndarray,
    bound: Any,
    slices: list[slice],
    compressed: list[CompressedField],
) -> TiledResult:
    """Build the tiled container from per-band results, in band order.

    Deterministic given the inputs: the serial path and the parallel
    fan-out assemble byte-identical payloads as long as the per-band
    compressor is deterministic (all of this library's are).
    """
    container = Container(
        header={
            "variant": f"tiled[{inner_variant}]",
            "inner_variant": inner_variant,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "n_tiles": len(slices),
            "band_starts": [s.start for s in slices],
            "eb_abs": bound.absolute,
        }
    )
    total_compressed = 0
    total_unpred = 0
    total_border = 0
    ratios = []
    for t, cf in enumerate(compressed):
        container.add(f"tile{t}", cf.payload)
        total_compressed += cf.stats.compressed_bytes
        total_unpred += cf.stats.n_unpredictable
        total_border += cf.stats.n_border
        ratios.append(cf.stats.ratio)

    stats = CompressionStats(
        original_bytes=int(data.size * data.dtype.itemsize),
        compressed_bytes=total_compressed,
        encoded_code_bytes=total_compressed,
        outlier_bytes=0,
        border_bytes=0,
        n_points=int(data.size),
        n_unpredictable=total_unpred,
        n_border=total_border,
    )
    return TiledResult(
        payload=container.to_bytes(),
        n_tiles=len(slices),
        stats=stats,
        tile_ratios=tuple(ratios),
    )


def tile_compress(
    compressor: _Compressor,
    data: np.ndarray,
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    n_tiles: int = 4,
) -> TiledResult:
    """Compress ``data`` as ``n_tiles`` independent bands along axis 0.

    This is the serial reference path; :func:`repro.service.workers.
    tile_compress_parallel` fans the same bands out across a process pool
    and produces a byte-identical payload.
    """
    data = np.ascontiguousarray(data)
    bound, slices = plan_bands(data, eb, mode, n_tiles)
    compressed = [
        compressor.compress(np.ascontiguousarray(data[sl]), bound.absolute, "abs")
        for sl in slices
    ]
    return assemble_tiles(compressor.name, data, bound, slices, compressed)


def _parse(
    payload: bytes, compressor: _Compressor | None
) -> tuple[Container, _Compressor]:
    """Open a tiled payload and pick its band decompressor.

    With an explicit ``compressor`` the payload must match it; with
    ``None`` the band codec is resolved from the ``inner_variant`` header
    through the central codec registry.
    """
    container = Container.from_bytes(payload)
    h = container.header
    if compressor is None:
        inner = h.get("inner_variant")
        if not isinstance(inner, str):
            raise ContainerError(
                f"tiled payload carries no inner variant name: {inner!r}"
            )
        from .codec.registry import get_codec

        return container, get_codec(inner)
    if h.get("inner_variant") != compressor.name:
        raise ContainerError(
            f"tiled payload holds {h.get('inner_variant')!r} bands, "
            f"decompressor is {compressor.name}"
        )
    return container, compressor


def decompress_tile(
    compressor: _Compressor | None, payload: bytes, index: int
) -> np.ndarray:
    """Random access: reconstruct band ``index`` only.

    ``index`` follows Python sequence conventions: negative values count
    from the end (``-1`` is the last band).  Out-of-bounds access raises
    :class:`ShapeError` naming the valid range.  ``compressor=None``
    dispatches on the payload's ``inner_variant`` header via the codec
    registry.
    """
    with decode_guard("tiled payload"):
        container, comp = _parse(payload, compressor)
        n = header_int(container.header, "n_tiles", lo=1)
        requested = index
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise ShapeError(
                f"tile index {requested} out of range for {n} tiles "
                f"(valid: {-n}..{n - 1})"
            )
        return comp.decompress(container.get(f"tile{index}"))


def tile_decompress(
    compressor: _Compressor | None, payload: bytes
) -> np.ndarray:
    """Reconstruct the full field from a tiled payload.

    ``compressor=None`` dispatches on the payload's ``inner_variant``
    header via the codec registry.
    """
    with decode_guard("tiled payload"):
        container, comp = _parse(payload, compressor)
        h = container.header
        shape = header_shape(h)
        dtype = header_dtype(h)
        out = np.empty(shape, dtype=dtype)
        starts = list(h["band_starts"]) + [shape[0]]
        for t in range(header_int(h, "n_tiles", lo=1, hi=len(starts) - 1)):
            band = comp.decompress(container.get(f"tile{t}"))
            out[starts[t] : starts[t + 1]] = band
        return out
