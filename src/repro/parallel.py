"""Tiled (block-parallel) compression — the OpenMP / multi-lane decomposition.

SZ's OpenMP mode and a multi-lane FPGA deployment both decompose a field
into independent bands along the slowest axis: each band compresses with
no cross-band feedback, so bands map 1:1 onto threads or PQD lanes
(Figure 8's parallelism axis).  The price is the prediction context lost
at band seams — measured by ``bench_ablation_tiling``.

Because bands are self-contained payloads, the tiled container also gives
*random access*: :func:`decompress_tile` reconstructs one band without
touching the rest, the access pattern post-analysis tools want on huge
snapshots.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, Protocol, TypeVar

import numpy as np

from .errors import ContainerError, ShapeError, decode_guard
from .io.container import Container
from .streams import header_dtype, header_int, header_shape
from .tiling import TileGrid
from .types import CompressedField, CompressionStats

__all__ = [
    "TiledResult",
    "tile_compress",
    "tile_decompress",
    "decompress_tile",
    "plan_bands",
    "assemble_tiles",
    "prefetch_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def prefetch_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int | None = None,
) -> Iterator[_R]:
    """Ordered ``map`` with a bounded thread-pool prefetch pipeline.

    Yields ``fn(item)`` in input order while up to ``workers + 1``
    following items are computed on background threads — the
    producer/consumer overlap the chunk-parallel Huffman kernel uses to
    hide entry-table construction behind the decode walk.  With one
    worker (or one item) it degrades to a plain serial ``map``.  A
    failing ``fn`` raises at the yield for its item, preserving order.
    """
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers <= 1 or len(items) <= 1:
        for item in items:
            yield fn(item)
        return
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        pending: deque = deque()
        it = iter(items)
        for item in it:
            pending.append(pool.submit(fn, item))
            if len(pending) > workers:
                break
        while pending:
            fut = pending.popleft()
            for item in it:  # keep the pipeline full while we wait
                pending.append(pool.submit(fn, item))
                break
            yield fut.result()


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> CompressedField: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class TiledResult:
    """A tiled compression result: per-band payloads plus aggregates."""

    payload: bytes
    n_tiles: int
    stats: CompressionStats
    tile_ratios: tuple[float, ...]

    @property
    def ratio(self) -> float:
        return self.stats.ratio


def plan_bands(
    data: np.ndarray, eb: float, mode: str, n_tiles: int, *, clamp: bool = False
) -> tuple[Any, list[slice]]:
    """Resolve the global bound and band slices for a tiled compression.

    Shared by the serial path below, the worker-pool fan-out in
    :mod:`repro.service.workers` and the array store's tile writer, so all
    three produce identical plans.  The error bound is resolved *globally*
    (VR-REL against the full field's range, as SZ's OpenMP mode does) and
    later applied per band as an absolute bound, so the guarantee is
    identical to the monolithic compressor's.

    Geometry comes from :class:`repro.tiling.TileGrid`: a tile count the
    split axis cannot hold raises :class:`ShapeError` naming the feasible
    maximum, or is clamped down to it with ``clamp=True``; a field too
    small for even one band always raises.
    """
    if data.ndim < 2:
        raise ShapeError("tiling needs at least 2 dimensions")
    from .config import resolve_error_bound

    bound = resolve_error_bound(data, eb, mode)
    grid = TileGrid.regular(data.shape, n_tiles, clamp=clamp)
    return bound, grid.band_slices()


def assemble_tiles(
    inner_variant: str,
    data: np.ndarray,
    bound: Any,
    slices: list[slice],
    compressed: list[CompressedField],
) -> TiledResult:
    """Build the tiled container from per-band results, in band order.

    Deterministic given the inputs: the serial path and the parallel
    fan-out assemble byte-identical payloads as long as the per-band
    compressor is deterministic (all of this library's are).
    """
    container = Container(
        header={
            "variant": f"tiled[{inner_variant}]",
            "inner_variant": inner_variant,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "n_tiles": len(slices),
            "band_starts": [s.start for s in slices],
            "eb_abs": bound.absolute,
        }
    )
    total_compressed = 0
    total_unpred = 0
    total_border = 0
    ratios = []
    for t, cf in enumerate(compressed):
        container.add(f"tile{t}", cf.payload)
        total_compressed += cf.stats.compressed_bytes
        total_unpred += cf.stats.n_unpredictable
        total_border += cf.stats.n_border
        ratios.append(cf.stats.ratio)

    stats = CompressionStats(
        original_bytes=int(data.size * data.dtype.itemsize),
        compressed_bytes=total_compressed,
        encoded_code_bytes=total_compressed,
        outlier_bytes=0,
        border_bytes=0,
        n_points=int(data.size),
        n_unpredictable=total_unpred,
        n_border=total_border,
    )
    return TiledResult(
        payload=container.to_bytes(),
        n_tiles=len(slices),
        stats=stats,
        tile_ratios=tuple(ratios),
    )


def tile_compress(
    compressor: _Compressor,
    data: np.ndarray,
    eb: float = 1e-3,
    mode: str = "vr_rel",
    *,
    n_tiles: int = 4,
) -> TiledResult:
    """Compress ``data`` as ``n_tiles`` independent bands along axis 0.

    This is the serial reference path; :func:`repro.service.workers.
    tile_compress_parallel` fans the same bands out across a process pool
    and produces a byte-identical payload.
    """
    data = np.ascontiguousarray(data)
    bound, slices = plan_bands(data, eb, mode, n_tiles)
    compressed = [
        compressor.compress(np.ascontiguousarray(data[sl]), bound.absolute, "abs")
        for sl in slices
    ]
    return assemble_tiles(compressor.name, data, bound, slices, compressed)


def _parse(
    payload: bytes, compressor: _Compressor | None
) -> tuple[Container, _Compressor]:
    """Open a tiled payload and pick its band decompressor.

    With an explicit ``compressor`` the payload must match it; with
    ``None`` the band codec is resolved from the ``inner_variant`` header
    through the central codec registry.
    """
    container = Container.from_bytes(payload)
    h = container.header
    if compressor is None:
        inner = h.get("inner_variant")
        if not isinstance(inner, str):
            raise ContainerError(
                f"tiled payload carries no inner variant name: {inner!r}"
            )
        from .codec.registry import get_codec

        return container, get_codec(inner)
    if h.get("inner_variant") != compressor.name:
        raise ContainerError(
            f"tiled payload holds {h.get('inner_variant')!r} bands, "
            f"decompressor is {compressor.name}"
        )
    return container, compressor


def _grid_from_header(h: dict) -> TileGrid:
    """Rebuild the (untrusted) tile grid from a tiled payload header."""
    shape = header_shape(h)
    n = header_int(h, "n_tiles", lo=1, hi=shape[0])
    starts = h.get("band_starts")
    if not isinstance(starts, list) or len(starts) != n:
        raise ContainerError(
            f"tiled header declares {n} tiles but carries band starts "
            f"{starts!r}"
        )
    return TileGrid.from_starts(shape, starts)


def decompress_tile(
    compressor: _Compressor | None, payload: bytes, index: int
) -> np.ndarray:
    """Random access: reconstruct band ``index`` only.

    ``index`` follows Python sequence conventions: negative values count
    from the end (``-1`` is the last band).  Out-of-bounds access raises
    :class:`ShapeError` naming the valid range.  ``compressor=None``
    dispatches on the payload's ``inner_variant`` header via the codec
    registry.
    """
    with decode_guard("tiled payload"):
        container, comp = _parse(payload, compressor)
        grid = _grid_from_header(container.header)
        return comp.decompress(container.get(f"tile{grid.resolve(index)}"))


def tile_decompress(
    compressor: _Compressor | None, payload: bytes
) -> np.ndarray:
    """Reconstruct the full field from a tiled payload.

    ``compressor=None`` dispatches on the payload's ``inner_variant``
    header via the codec registry.
    """
    with decode_guard("tiled payload"):
        container, comp = _parse(payload, compressor)
        h = container.header
        grid = _grid_from_header(h)
        out = np.empty(grid.shape, dtype=header_dtype(h))
        for t in range(grid.n_tiles):
            out[grid.band_slice(t)] = comp.decompress(container.get(f"tile{t}"))
        return out
