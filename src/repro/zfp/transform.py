"""The 4-point lifted decorrelating transform (ZFP's analysis filter).

Integer lifting steps implementing (a close relative of) ZFP's orthogonal
block transform.  The forward/inverse pair is *exactly* invertible over
integers — every step is an add/subtract with arithmetic shifts — which is
what makes the codec's reconstruction deterministic.  Applied separably
along each axis of a 4^d block.

Vectorized: each lifting step operates on whole coefficient planes at
once, so transforming all blocks of a field is a handful of NumPy ops.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["fwd_lift", "inv_lift", "fwd_transform", "inv_transform",
           "SEQUENCY_ORDER_2D", "SEQUENCY_ORDER_3D", "sequency_order"]


def fwd_lift(v: np.ndarray, axis: int) -> None:
    """In-place forward lifting of length-4 vectors along ``axis``.

    ``v`` must be an integer array with shape 4 along ``axis``.
    """
    if v.shape[axis] != 4:
        raise ShapeError(f"lifting needs length 4 along axis {axis}")
    idx = [slice(None)] * v.ndim

    def at(i):
        s = list(idx)
        s[axis] = i
        return tuple(s)

    x, y, z, w = at(0), at(1), at(2), at(3)
    # ZFP's forward lifting schedule.
    v[x] += v[w]; v[x] >>= 1; v[w] -= v[x]
    v[z] += v[y]; v[z] >>= 1; v[y] -= v[z]
    v[x] += v[z]; v[x] >>= 1; v[z] -= v[x]
    v[w] += v[y]; v[w] >>= 1; v[y] -= v[w]
    v[w] += v[y] >> 1; v[y] -= v[w] >> 1


def inv_lift(v: np.ndarray, axis: int) -> None:
    """Exact inverse of :func:`fwd_lift` (steps undone in reverse)."""
    if v.shape[axis] != 4:
        raise ShapeError(f"lifting needs length 4 along axis {axis}")
    idx = [slice(None)] * v.ndim

    def at(i):
        s = list(idx)
        s[axis] = i
        return tuple(s)

    x, y, z, w = at(0), at(1), at(2), at(3)
    v[y] += v[w] >> 1; v[w] -= v[y] >> 1
    v[y] += v[w]; v[w] <<= 1; v[w] -= v[y]
    v[z] += v[x]; v[x] <<= 1; v[x] -= v[z]
    v[y] += v[z]; v[z] <<= 1; v[z] -= v[y]
    v[w] += v[x]; v[x] <<= 1; v[x] -= v[w]


def fwd_transform(blocks: np.ndarray) -> None:
    """Forward transform of stacked blocks, in place.

    ``blocks`` has shape ``(n_blocks, 4)`` / ``(n_blocks, 4, 4)`` /
    ``(n_blocks, 4, 4, 4)`` with an integer dtype.
    """
    for axis in range(1, blocks.ndim):
        fwd_lift(blocks, axis)


def inv_transform(blocks: np.ndarray) -> None:
    """Inverse transform of stacked blocks, in place."""
    for axis in range(blocks.ndim - 1, 0, -1):
        inv_lift(blocks, axis)


def sequency_order(ndim: int) -> np.ndarray:
    """Coefficient ordering by total sequency (low frequencies first).

    ZFP transmits coefficients in this order so that early bit planes
    carry the perceptually/energetically dominant content.
    """
    if ndim == 1:
        return np.arange(4, dtype=np.int64)
    if ndim == 2:
        grid = np.add.outer(np.arange(4), np.arange(4))
        return np.argsort(grid.reshape(-1), kind="stable").astype(np.int64)
    if ndim == 3:
        grid = (
            np.arange(4)[:, None, None]
            + np.arange(4)[None, :, None]
            + np.arange(4)[None, None, :]
        )
        return np.argsort(grid.reshape(-1), kind="stable").astype(np.int64)
    raise ShapeError(f"sequency order supports 1-3 dimensions, got {ndim}")


SEQUENCY_ORDER_2D = sequency_order(2)
SEQUENCY_ORDER_3D = sequency_order(3)
