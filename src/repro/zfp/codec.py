"""Fixed-accuracy ZFP-like codec: blocks → lifting → negabinary bit planes.

Encode path per 4^d block (ZFP's architecture):

1. **block floating point** — scale the block's floats to 40-bit integers
   against the block's maximum exponent;
2. **decorrelating transform** — the separable integer lifting of
   :mod:`repro.zfp.transform`;
3. **negabinary mapping** — sign-free representation whose truncation
   error is one-sided per plane;
4. **embedded bit-plane coding** — planes are emitted MSB-first with
   ZFP's unary group testing; emission stops at the plane whose weight
   (mapped back through the block scale) falls below the tolerance, so
   the absolute error bound holds per point.

The codec is error-bounded like SZ (fixed-accuracy mode), which is what
the online-selector study (paper ref [53]) needs: both compressors honour
the same bound, only their models differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import ErrorBoundMode, resolve_error_bound
from ..encoding.bitio import BitReader, BitWriter
from ..errors import ContainerError, DTypeError, ShapeError, decode_guard
from ..io.container import Container
from ..streams import (
    MAX_FIELD_POINTS,
    bound_from_header,
    bound_to_header,
    build_stats,
    header_dtype,
    header_int,
    header_shape,
)
from ..types import CompressedField
from .transform import fwd_transform, inv_transform, sequency_order

__all__ = ["ZFPCompressor"]

_INTPREC = 48  # bit planes carried per coefficient
_SCALE_BITS = 40  # block values scaled to ~2^40 before the transform
def _guard_bits(ndim: int) -> int:
    """Transform-gain + plane-truncation safety margin.

    The inverse lifting amplifies per-coefficient truncation error by up
    to ~2 per axis, and negabinary truncation contributes one more plane:
    ndim + 1 guard planes keep the worst case safely inside the bound
    (verified by the property tests with a >2x margin).
    """
    return ndim + 1
_EMAX_BITS = 12
_EMAX_BIAS = 1 << 11
_NBMASK = np.int64(0xAAAAAAAAAAAA)  # negabinary mask over _INTPREC bits


def _negabinary(q: np.ndarray) -> np.ndarray:
    """Two's complement -> negabinary (unsigned), vectorized."""
    return ((q + _NBMASK) ^ _NBMASK).astype(np.uint64)


def _inv_negabinary(u: np.ndarray) -> np.ndarray:
    x = u.astype(np.int64)
    return (x ^ _NBMASK) - _NBMASK


def _blockify(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad to multiples of 4 (edge replication) and stack 4^d blocks."""
    ndim = data.ndim
    padded_shape = tuple(-(-n // 4) * 4 for n in data.shape)
    pad = [(0, p - n) for p, n in zip(padded_shape, data.shape)]
    padded = np.pad(data, pad, mode="edge")
    if ndim == 2:
        n0, n1 = padded.shape
        blocks = padded.reshape(n0 // 4, 4, n1 // 4, 4)
        blocks = blocks.transpose(0, 2, 1, 3).reshape(-1, 4, 4)
    elif ndim == 3:
        n0, n1, n2 = padded.shape
        blocks = padded.reshape(n0 // 4, 4, n1 // 4, 4, n2 // 4, 4)
        blocks = blocks.transpose(0, 2, 4, 1, 3, 5).reshape(-1, 4, 4, 4)
    else:
        raise ShapeError(f"ZFP codec supports 2D/3D fields, got {ndim}D")
    return np.ascontiguousarray(blocks), padded_shape


def _unblockify(
    blocks: np.ndarray, padded_shape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    ndim = len(shape)
    if ndim == 2:
        n0, n1 = padded_shape
        out = blocks.reshape(n0 // 4, n1 // 4, 4, 4)
        out = out.transpose(0, 2, 1, 3).reshape(n0, n1)
    else:
        n0, n1, n2 = padded_shape
        out = blocks.reshape(n0 // 4, n1 // 4, n2 // 4, 4, 4, 4)
        out = out.transpose(0, 3, 1, 4, 2, 5).reshape(n0, n1, n2)
    return out[tuple(slice(0, n) for n in shape)]


def _encode_block_planes(
    w: BitWriter, u_ordered: list[int], kmin: int
) -> None:
    """ZFP's embedded plane coding: verbatim prefix + unary group testing."""
    size = len(u_ordered)
    n = 0  # number of coefficients known significant (monotone)
    for k in range(_INTPREC - 1, kmin - 1, -1):
        x = 0
        for i in range(size):
            x |= ((u_ordered[i] >> k) & 1) << i
        # known-significant prefix, verbatim
        w.write(x & ((1 << n) - 1) if n else 0, n)
        x >>= n
        # unary run-length for newly significant coefficients
        while n < size:
            has_more = 1 if x != 0 else 0
            w.write(has_more, 1)
            if not has_more:
                break
            while n < size - 1:
                bit = x & 1
                w.write(bit, 1)
                x >>= 1
                n += 1
                if bit:
                    break
            else:
                x >>= 1
                n += 1
                break  # n == size


def _decode_block_planes(r: BitReader, size: int, kmin: int) -> list[int]:
    u = [0] * size
    n = 0
    for k in range(_INTPREC - 1, kmin - 1, -1):
        x = r.read(n) if n else 0
        shift = n
        while n < size:
            if not r.read(1):
                break
            while n < size - 1:
                bit = r.read(1)
                x |= bit << shift
                shift += 1
                n += 1
                if bit:
                    break
            else:
                x |= 1 << shift
                shift += 1
                n += 1
                break
        for i in range(size):
            if (x >> i) & 1:
                u[i] |= 1 << k
    return u


@dataclass(frozen=True)
class ZFPCompressor:
    """Fixed-accuracy transform-based compressor (the SZ comparator)."""

    name = "ZFP-like"

    def compress(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: ErrorBoundMode | str = ErrorBoundMode.VR_REL,
    ) -> CompressedField:
        data = np.ascontiguousarray(data)
        if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise DTypeError(f"ZFP codec supports float32/float64, got {data.dtype}")
        if not np.isfinite(data).all():
            raise DTypeError("ZFP codec requires finite data")
        bound = resolve_error_bound(data, eb, mode)
        if bound.mode is ErrorBoundMode.PW_REL:
            raise ShapeError("ZFP-like codec supports ABS/VR_REL bounds")
        tol = bound.absolute
        ndim = data.ndim

        blocks, padded_shape = _blockify(data.astype(np.float64))
        n_blocks = blocks.shape[0]
        size = 4**ndim
        order = sequency_order(ndim)
        log2_tol = math.floor(math.log2(tol))

        # Block floating point: common exponent per block.
        absmax = np.abs(blocks).reshape(n_blocks, -1).max(axis=1)
        emax = np.zeros(n_blocks, dtype=np.int64)
        nz = absmax > 0
        emax[nz] = np.ceil(np.log2(absmax[nz])).astype(np.int64)
        scale = np.ldexp(1.0, (_SCALE_BITS - emax).astype(np.int64))
        q = np.rint(blocks * scale.reshape((-1,) + (1,) * ndim)).astype(np.int64)
        fwd_transform(q)
        u = _negabinary(q).reshape(n_blocks, -1)[:, order]

        w = BitWriter()
        u_list = u.tolist()
        emax_list = emax.tolist()
        for b in range(n_blocks):
            if not nz[b]:
                w.write(0, 1)  # all-zero block
                continue
            w.write(1, 1)
            e = emax_list[b]
            w.write(e + _EMAX_BIAS, _EMAX_BITS)
            # Planes below kmin carry error < tol after unscaling.
            kmin = max(0, log2_tol + _SCALE_BITS - e - _guard_bits(ndim))
            _encode_block_planes(w, u_list[b], kmin)
        payload = w.getvalue()

        container = Container(
            header={
                "variant": self.name,
                "shape": list(data.shape),
                "dtype": str(data.dtype),
                "bound": bound_to_header(bound),
                "n_blocks": n_blocks,
            }
        )
        container.add("planes", payload)
        stats = build_stats(
            data=data,
            encoded_code_bytes=len(payload),
            outlier_bytes=0,
            border_bytes=0,
            n_unpredictable=0,
            n_border=0,
        )
        return CompressedField(
            variant=self.name,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            bound=bound,
            quant=None,
            payload=container.to_bytes(),
            stats=stats,
            meta={"blocks": n_blocks, "block_size": 4},
        )

    def decompress(self, compressed: CompressedField | bytes) -> np.ndarray:
        payload = (
            compressed.payload
            if isinstance(compressed, CompressedField)
            else compressed
        )
        with decode_guard(f"{self.name} payload"):
            return self._decompress(payload)

    def _decompress(self, payload: bytes) -> np.ndarray:
        container = Container.from_bytes(payload)
        h = container.header
        if h.get("variant") != self.name:
            raise ContainerError(
                f"payload was produced by {h.get('variant')!r}, not {self.name}"
            )
        shape = header_shape(h)
        dtype = header_dtype(h)
        bound = bound_from_header(h["bound"])
        tol = bound.absolute
        ndim = len(shape)
        n_blocks = header_int(h, "n_blocks", hi=MAX_FIELD_POINTS)
        expected_blocks = 1
        for s in shape:
            expected_blocks *= -(-s // 4)
        if n_blocks != expected_blocks:
            raise ContainerError(
                f"header declares {n_blocks} blocks, shape implies "
                f"{expected_blocks}"
            )
        size = 4**ndim
        order = sequency_order(ndim)
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(size)
        log2_tol = math.floor(math.log2(tol))

        r = BitReader(container.get("planes"))
        u = np.zeros((n_blocks, size), dtype=np.uint64)
        emax = np.zeros(n_blocks, dtype=np.int64)
        nonzero = np.zeros(n_blocks, dtype=bool)
        for b in range(n_blocks):
            if not r.read(1):
                continue
            nonzero[b] = True
            e = r.read(_EMAX_BITS) - _EMAX_BIAS
            emax[b] = e
            kmin = max(0, log2_tol + _SCALE_BITS - e - _guard_bits(ndim))
            u[b] = _decode_block_planes(r, size, kmin)

        q = _inv_negabinary(u[:, inv_order]).reshape((n_blocks,) + (4,) * ndim)
        inv_transform(q)
        scale = np.ldexp(1.0, (emax - _SCALE_BITS).astype(np.int64))
        blocks = q.astype(np.float64) * scale.reshape((-1,) + (1,) * ndim)
        blocks[~nonzero] = 0.0
        padded_shape = tuple(-(-n // 4) * 4 for n in shape)
        return _unblockify(blocks, padded_shape, shape).astype(dtype)
