"""Fixed-accuracy ZFP-like codec: blocks → lifting → negabinary bit planes.

Encode path per 4^d block (ZFP's architecture):

1. **block floating point** — scale the block's floats to 40-bit integers
   against the block's maximum exponent;
2. **decorrelating transform** — the separable integer lifting of
   :mod:`repro.zfp.transform`;
3. **negabinary mapping** — sign-free representation whose truncation
   error is one-sided per plane;
4. **embedded bit-plane coding** — planes are emitted MSB-first with
   ZFP's unary group testing; emission stops at the plane whose weight
   (mapped back through the block scale) falls below the tolerance, so
   the absolute error bound holds per point.

The codec is error-bounded like SZ (fixed-accuracy mode), which is what
the online-selector study (paper ref [53]) needs: both compressors honour
the same bound, only their models differ.

The whole transform chain is one ZFP-specific stage; input validation,
bound resolution and header assembly come from :mod:`repro.codec.stages`.
ZFP is outside the SZ family, so its :class:`PipelineSpec` carries no
Table 2 row (``table2=None``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..codec.pipeline import PipelineCompressor, PipelineContext, Stage
from ..codec.registry import register_codec
from ..codec.spec import PipelineSpec, StageSpec
from ..codec.stages import HeaderStage, ResolveBoundStage, ValidateInputStage
from ..encoding.bitio import BitReader, BitWriter
from ..errors import ContainerError, DTypeError, ShapeError
from ..streams import MAX_FIELD_POINTS, header_int
from .transform import fwd_transform, inv_transform, sequency_order

__all__ = ["ZFPCompressor", "ZFP_SPEC"]

_INTPREC = 48  # bit planes carried per coefficient
_SCALE_BITS = 40  # block values scaled to ~2^40 before the transform


def _guard_bits(ndim: int) -> int:
    """Transform-gain + plane-truncation safety margin.

    The inverse lifting amplifies per-coefficient truncation error by up
    to ~2 per axis, and negabinary truncation contributes one more plane:
    ndim + 1 guard planes keep the worst case safely inside the bound
    (verified by the property tests with a >2x margin).
    """
    return ndim + 1


_EMAX_BITS = 12
_EMAX_BIAS = 1 << 11
_NBMASK = np.int64(0xAAAAAAAAAAAA)  # negabinary mask over _INTPREC bits

ZFP_SPEC = PipelineSpec(
    variant="ZFP-like",
    table2=None,  # outside the SZ family; no Table 2 row to validate
    stages=(
        StageSpec("checks"),
        StageSpec("bound"),
        StageSpec("zfp_blocks"),
        StageSpec("header"),
        StageSpec("planes"),
    ),
)


def _negabinary(q: np.ndarray) -> np.ndarray:
    """Two's complement -> negabinary (unsigned), vectorized."""
    return ((q + _NBMASK) ^ _NBMASK).astype(np.uint64)


def _inv_negabinary(u: np.ndarray) -> np.ndarray:
    x = u.astype(np.int64)
    return (x ^ _NBMASK) - _NBMASK


def _blockify(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad to multiples of 4 (edge replication) and stack 4^d blocks."""
    ndim = data.ndim
    padded_shape = tuple(-(-n // 4) * 4 for n in data.shape)
    pad = [(0, p - n) for p, n in zip(padded_shape, data.shape)]
    padded = np.pad(data, pad, mode="edge")
    if ndim == 2:
        n0, n1 = padded.shape
        blocks = padded.reshape(n0 // 4, 4, n1 // 4, 4)
        blocks = blocks.transpose(0, 2, 1, 3).reshape(-1, 4, 4)
    elif ndim == 3:
        n0, n1, n2 = padded.shape
        blocks = padded.reshape(n0 // 4, 4, n1 // 4, 4, n2 // 4, 4)
        blocks = blocks.transpose(0, 2, 4, 1, 3, 5).reshape(-1, 4, 4, 4)
    else:
        raise ShapeError(f"ZFP codec supports 2D/3D fields, got {ndim}D")
    return np.ascontiguousarray(blocks), padded_shape


def _unblockify(
    blocks: np.ndarray, padded_shape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    ndim = len(shape)
    if ndim == 2:
        n0, n1 = padded_shape
        out = blocks.reshape(n0 // 4, n1 // 4, 4, 4)
        out = out.transpose(0, 2, 1, 3).reshape(n0, n1)
    else:
        n0, n1, n2 = padded_shape
        out = blocks.reshape(n0 // 4, n1 // 4, n2 // 4, 4, 4, 4)
        out = out.transpose(0, 3, 1, 4, 2, 5).reshape(n0, n1, n2)
    return out[tuple(slice(0, n) for n in shape)]


def _encode_block_planes(
    w: BitWriter, u_ordered: list[int], kmin: int
) -> None:
    """ZFP's embedded plane coding: verbatim prefix + unary group testing."""
    size = len(u_ordered)
    n = 0  # number of coefficients known significant (monotone)
    for k in range(_INTPREC - 1, kmin - 1, -1):
        x = 0
        for i in range(size):
            x |= ((u_ordered[i] >> k) & 1) << i
        # known-significant prefix, verbatim
        w.write(x & ((1 << n) - 1) if n else 0, n)
        x >>= n
        # unary run-length for newly significant coefficients
        while n < size:
            has_more = 1 if x != 0 else 0
            w.write(has_more, 1)
            if not has_more:
                break
            while n < size - 1:
                bit = x & 1
                w.write(bit, 1)
                x >>= 1
                n += 1
                if bit:
                    break
            else:
                x >>= 1
                n += 1
                break  # n == size

def _decode_block_planes(r: BitReader, size: int, kmin: int) -> list[int]:
    u = [0] * size
    n = 0
    for k in range(_INTPREC - 1, kmin - 1, -1):
        x = r.read(n) if n else 0
        shift = n
        while n < size:
            if not r.read(1):
                break
            while n < size - 1:
                bit = r.read(1)
                x |= bit << shift
                shift += 1
                n += 1
                if bit:
                    break
            else:
                x |= 1 << shift
                shift += 1
                n += 1
                break
        for i in range(size):
            if (x >> i) & 1:
                u[i] |= 1 << k
    return u


def _check_input(data: np.ndarray) -> None:
    if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DTypeError(f"ZFP codec supports float32/float64, got {data.dtype}")
    if not np.isfinite(data).all():
        raise DTypeError("ZFP codec requires finite data")


class _ZFPBlocksStage:
    """Block float → lifting → negabinary → embedded bit-plane coding."""

    name = "zfp_blocks"

    def forward(self, ctx: PipelineContext) -> None:
        data = ctx.data
        tol = ctx.bound.absolute
        ndim = data.ndim

        blocks, _ = _blockify(data.astype(np.float64))
        n_blocks = blocks.shape[0]
        order = sequency_order(ndim)
        log2_tol = math.floor(math.log2(tol))

        # Block floating point: common exponent per block.
        absmax = np.abs(blocks).reshape(n_blocks, -1).max(axis=1)
        emax = np.zeros(n_blocks, dtype=np.int64)
        nz = absmax > 0
        emax[nz] = np.ceil(np.log2(absmax[nz])).astype(np.int64)
        scale = np.ldexp(1.0, (_SCALE_BITS - emax).astype(np.int64))
        q = np.rint(blocks * scale.reshape((-1,) + (1,) * ndim)).astype(np.int64)
        fwd_transform(q)
        u = _negabinary(q).reshape(n_blocks, -1)[:, order]

        w = BitWriter()
        u_list = u.tolist()
        emax_list = emax.tolist()
        for b in range(n_blocks):
            if not nz[b]:
                w.write(0, 1)  # all-zero block
                continue
            w.write(1, 1)
            e = emax_list[b]
            w.write(e + _EMAX_BIAS, _EMAX_BITS)
            # Planes below kmin carry error < tol after unscaling.
            kmin = max(0, log2_tol + _SCALE_BITS - e - _guard_bits(ndim))
            _encode_block_planes(w, u_list[b], kmin)
        ctx.artifacts["planes_payload"] = w.getvalue()
        ctx.artifacts["n_blocks"] = n_blocks

    def inverse(self, ctx: PipelineContext) -> None:
        shape = ctx.shape
        dtype = ctx.dtype
        tol = ctx.bound.absolute
        ndim = len(shape)
        n_blocks = header_int(ctx.header, "n_blocks", hi=MAX_FIELD_POINTS)
        size = 4**ndim
        order = sequency_order(ndim)
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(size)
        log2_tol = math.floor(math.log2(tol))

        r = BitReader(ctx.container.get("planes"))
        u = np.zeros((n_blocks, size), dtype=np.uint64)
        emax = np.zeros(n_blocks, dtype=np.int64)
        nonzero = np.zeros(n_blocks, dtype=bool)
        for b in range(n_blocks):
            if not r.read(1):
                continue
            nonzero[b] = True
            e = r.read(_EMAX_BITS) - _EMAX_BIAS
            emax[b] = e
            kmin = max(0, log2_tol + _SCALE_BITS - e - _guard_bits(ndim))
            u[b] = _decode_block_planes(r, size, kmin)

        q = _inv_negabinary(u[:, inv_order]).reshape((n_blocks,) + (4,) * ndim)
        inv_transform(q)
        scale = np.ldexp(1.0, (emax - _SCALE_BITS).astype(np.int64))
        blocks = q.astype(np.float64) * scale.reshape((-1,) + (1,) * ndim)
        blocks[~nonzero] = 0.0
        padded_shape = tuple(-(-n // 4) * 4 for n in shape)
        ctx.out = _unblockify(blocks, padded_shape, shape).astype(dtype)


class _ZFPHeaderStage(HeaderStage):
    """ZFP header: block count only (no quantizer in this model)."""

    def __init__(self) -> None:
        super().__init__(with_quant=False)

    def write_extra(self, ctx: PipelineContext) -> None:
        n_blocks = ctx.require("n_blocks")
        ctx.header["n_blocks"] = n_blocks
        ctx.meta["blocks"] = n_blocks
        ctx.meta["block_size"] = 4

    def read_extra(self, ctx: PipelineContext) -> None:
        n_blocks = header_int(ctx.header, "n_blocks", hi=MAX_FIELD_POINTS)
        expected_blocks = 1
        for s in ctx.shape:
            expected_blocks *= -(-s // 4)
        if n_blocks != expected_blocks:
            raise ContainerError(
                f"header declares {n_blocks} blocks, shape implies "
                f"{expected_blocks}"
            )


class _PlanesStage:
    """Emit the embedded bit-plane stream as the payload's single section."""

    name = "planes"

    def forward(self, ctx: PipelineContext) -> None:
        payload = ctx.require("planes_payload")
        ctx.container.add("planes", payload)
        ctx.encoded_code_bytes = len(payload)

    def inverse(self, ctx: PipelineContext) -> None:
        pass


@register_codec(
    name="ZFP-like",
    aliases=("zfp-like",),
    spec=ZFP_SPEC,
)
@dataclass(frozen=True)
class ZFPCompressor(PipelineCompressor):
    """Fixed-accuracy transform-based compressor (the SZ comparator)."""

    name = "ZFP-like"
    spec = ZFP_SPEC

    def build_stages(self) -> tuple[Stage, ...]:
        return (
            ValidateInputStage(_check_input),
            ResolveBoundStage(
                forbid_pw_rel="ZFP-like codec supports ABS/VR_REL bounds"
            ),
            _ZFPBlocksStage(),
            _ZFPHeaderStage(),
            _PlanesStage(),
        )
