"""A ZFP-like transform-based error-bounded compressor.

The paper's related work (§5.1) repeatedly positions SZ against ZFP: "SZ
(prediction-based model) and ZFP (transform-based model) are two leading
lossy compressors", and ref [53] builds an online selector between them.
To make those comparisons runnable, this package implements the
transform-based model from scratch, following ZFP's architecture:

* 4^d blocks with block-floating-point alignment to a common exponent,
* the orthogonal-ish lifting transform applied along each axis,
* negabinary coefficient coding with embedded bit-plane group testing,
* fixed-accuracy mode: planes are emitted until the remaining weight is
  below the absolute tolerance.

It is an architectural reimplementation, not a bit-compatible codec.
"""

from .codec import ZFPCompressor
from .transform import fwd_lift, inv_lift, fwd_transform, inv_transform

__all__ = [
    "ZFPCompressor",
    "fwd_lift",
    "inv_lift",
    "fwd_transform",
    "inv_transform",
]
