"""From-scratch DEFLATE-style lossless codec — the "gzip" stage.

Both GhostSZ and waveSZ finish with the Xilinx FPGA gzip IP (paper §4.1);
SZ-1.4 finishes with gzip in ``best_speed`` mode.  This package provides the
equivalent substrate, built from scratch:

* :mod:`repro.lossless.lz77` — hash-chain LZ77 matcher with zlib-like
  ``best_speed`` / ``best_compression`` effort levels,
* :mod:`repro.lossless.deflate` — a DEFLATE-style container combining the
  LZ77 token stream with canonical Huffman coding of literal/length and
  distance alphabets,
* :mod:`repro.lossless.gzipstage` — the pipeline-stage wrapper used by the
  compressors, with an optional stdlib-``zlib`` cross-check backend.
"""

from .deflate import deflate, inflate
from .gzipstage import GzipStage, LosslessBackend, LosslessMode
from .lz77 import LZ77Encoder, TokenStream

__all__ = [
    "deflate",
    "inflate",
    "GzipStage",
    "LosslessBackend",
    "LosslessMode",
    "LZ77Encoder",
    "TokenStream",
]
