"""Hash-chain LZ77 matcher.

The parse is greedy with a zlib-style hash-chain match finder: a dict maps
the 3-byte hash at each inserted position to the most recent position, and a
``prev`` array chains older positions with the same hash.  Two effort levels
mirror gzip's ``best_speed`` / ``best_compression``: the fast level walks
short chains and only inserts match-start positions; the thorough level walks
long chains and inserts every position inside matches.

Match extension compares NumPy ``uint8`` views instead of Python bytes so
long matches cost one vector comparison rather than a byte loop (hot-loop
vectorization per the HPC guide).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LosslessError
from ..kernels.dispatch import register_kernel, resolve

__all__ = ["LZ77Encoder", "TokenStream", "MIN_MATCH", "MAX_MATCH", "WINDOW_SIZE"]

MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 32768


@dataclass(frozen=True)
class TokenStream:
    """Parsed LZ77 stream as structure-of-arrays.

    ``kinds[i] == 0`` marks a literal whose byte value is ``values[i]``;
    ``kinds[i] == 1`` marks a match of length ``values[i]`` at backward
    distance ``dists[i]``.  Kept columnar so the DEFLATE layer can map the
    whole stream to Huffman symbols with vector ops.
    """

    kinds: np.ndarray  # uint8
    values: np.ndarray  # int32: literal byte or match length
    dists: np.ndarray  # int32: match distance (0 for literals)

    def __post_init__(self) -> None:
        if not (self.kinds.shape == self.values.shape == self.dists.shape):
            raise LosslessError("token arrays must have matching shapes")

    @property
    def n_tokens(self) -> int:
        return self.kinds.size

    def expanded_size(self) -> int:
        """Number of bytes this stream reconstructs to."""
        lit = int((self.kinds == 0).sum())
        mat = int(self.values[self.kinds == 1].sum())
        return lit + mat

    def reconstruct(self) -> bytes:
        """Inverse of the parse: expand tokens back to the original bytes."""
        out = bytearray(self.expanded_size())
        pos = 0
        kinds = self.kinds
        values = self.values
        dists = self.dists
        i = 0
        n = kinds.size
        # Process runs of literals in bulk; copy matches slice-wise.
        is_match = kinds == 1
        boundaries = np.flatnonzero(is_match)
        prev_end = 0
        for b in boundaries:
            if b > prev_end:  # literal run [prev_end, b)
                run = values[prev_end:b].astype(np.uint8).tobytes()
                out[pos : pos + len(run)] = run
                pos += len(run)
            length = int(values[b])
            dist = int(dists[b])
            if dist <= 0 or dist > pos:
                raise LosslessError(f"invalid match distance {dist} at offset {pos}")
            if dist >= length:
                out[pos : pos + length] = out[pos - dist : pos - dist + length]
            else:  # overlapping copy: replicate the dist-byte period
                chunk = bytes(out[pos - dist : pos])
                reps = -(-length // dist)
                out[pos : pos + length] = (chunk * reps)[:length]
            pos += length
            prev_end = b + 1
        if prev_end < n:  # trailing literals
            run = values[prev_end:n].astype(np.uint8).tobytes()
            out[pos : pos + len(run)] = run
            pos += len(run)
        return bytes(out)


class LZ77Encoder:
    """Greedy hash-chain LZ77 parser.

    Parameters mirror zlib: ``max_chain`` bounds match-finder effort,
    ``good_len`` stops the chain walk early once a long-enough match is in
    hand, ``insert_all`` controls whether positions inside matches enter the
    hash chains (zlib level-1 skips them).
    """

    def __init__(
        self,
        *,
        window: int = WINDOW_SIZE,
        max_chain: int = 32,
        good_len: int = 32,
        insert_all: bool = True,
    ) -> None:
        if window <= 0 or window > WINDOW_SIZE:
            raise LosslessError(f"window must be in (0, {WINDOW_SIZE}]")
        if max_chain < 1:
            raise LosslessError("max_chain must be >= 1")
        self.window = window
        self.max_chain = max_chain
        self.good_len = good_len
        self.insert_all = insert_all

    @classmethod
    def best_speed(cls) -> "LZ77Encoder":
        """gzip ``--fast``-like effort (the SZ-1.4 default mode)."""
        return cls(max_chain=4, good_len=8, insert_all=False)

    @classmethod
    def best_compression(cls) -> "LZ77Encoder":
        """gzip ``--best``-like effort."""
        return cls(max_chain=128, good_len=64, insert_all=True)

    def parse(self, data: bytes) -> TokenStream:
        """Greedy-parse ``data`` into an LZ77 token stream.

        Dispatches through the ``lz77.parse`` kernel: the flat-array
        fast path (:mod:`repro.kernels.lz77_fast`) emits a
        token-identical stream for every input and parameter set.
        """
        n = len(data)
        empty = np.empty(0, dtype=np.int32)
        if n == 0:
            return TokenStream(empty.astype(np.uint8), empty, empty)
        buf = np.frombuffer(data, dtype=np.uint8)
        if n < MIN_MATCH + 1:
            kinds = np.zeros(n, dtype=np.uint8)
            return TokenStream(kinds, buf.astype(np.int32), np.zeros(n, np.int32))
        return resolve("lz77.parse")(self, data)


def _parse_reference(encoder: LZ77Encoder, data: bytes) -> TokenStream:
    """Dict/list hash-chain parse loop — the ``lz77.parse`` reference."""
    n = len(data)
    buf = np.frombuffer(data, dtype=np.uint8)

    # 3-byte rolling hash at every position (vectorized precompute).
    # Materialized as Python lists: the parse loop below does scalar
    # indexing, which is ~4x faster on lists than on NumPy arrays.
    h = (
        (buf[:-2].astype(np.int64) << 10)
        ^ (buf[1:-1].astype(np.int64) << 5)
        ^ buf[2:].astype(np.int64)
    ).tolist()
    head: dict[int, int] = {}
    prev = [-1] * n

    kinds_out: list[int] = []
    values_out: list[int] = []
    dists_out: list[int] = []
    append_k = kinds_out.append
    append_v = values_out.append
    append_d = dists_out.append

    window = encoder.window
    max_chain = encoder.max_chain
    good_len = encoder.good_len
    insert_all = encoder.insert_all
    hash_limit = n - 2  # last position with a full 3-byte hash

    def match_len(cand: int, pos: int, limit: int) -> int:
        a = buf[cand : cand + limit]
        b = buf[pos : pos + limit]
        neq = a != b
        first = int(neq.argmax())
        return limit if not neq[first] else first

    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i < hash_limit:
            hv = h[i]
            cand = head.get(hv, -1)
            limit = min(MAX_MATCH, n - i)
            chain = 0
            while cand >= 0 and i - cand <= window and chain < max_chain:
                ml = match_len(cand, i, limit)
                if ml > best_len:
                    best_len = ml
                    best_dist = i - cand
                    if ml >= good_len or ml == limit:
                        break
                cand = prev[cand]
                chain += 1
            # Insert current position into its chain.
            prev[i] = head.get(hv, -1)
            head[hv] = i
        if best_len >= MIN_MATCH:
            append_k(1)
            append_v(best_len)
            append_d(best_dist)
            if insert_all:
                stop = min(i + best_len, hash_limit)
                get = head.get
                for j in range(i + 1, stop):
                    hj = h[j]
                    prev[j] = get(hj, -1)
                    head[hj] = j
            i += best_len
        else:
            append_k(0)
            append_v(int(buf[i]))
            append_d(0)
            i += 1

    return TokenStream(
        np.array(kinds_out, dtype=np.uint8),
        np.array(values_out, dtype=np.int32),
        np.array(dists_out, dtype=np.int32),
    )


register_kernel(
    "lz77.parse",
    _parse_reference,
    fast="repro.kernels.lz77_fast:parse_tokens",
)
