"""The lossless pipeline stage applied after quantization/encoding.

SZ-1.4 runs gzip in ``best_speed`` mode; the artifact evaluates both
``gzip --fast`` and ``gzip --best`` on the quantization-code archives.
:class:`GzipStage` wraps our from-scratch DEFLATE substrate behind those two
modes and optionally the stdlib ``zlib`` backend so tests can cross-check
ratios against a reference DEFLATE implementation.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

from ..errors import LosslessError
from .deflate import deflate, inflate
from .lz77 import LZ77Encoder

__all__ = ["LosslessMode", "LosslessBackend", "GzipStage"]


class LosslessMode(enum.Enum):
    """gzip effort level (paper §4.1: SZ-1.4 uses best_speed)."""

    BEST_SPEED = "best_speed"
    BEST_COMPRESSION = "best_compression"


class LosslessBackend(enum.Enum):
    """Which DEFLATE implementation performs the stage.

    ``OURS`` is the from-scratch substrate (default); ``ZLIB`` is the
    stdlib reference used for cross-checks and for large inputs where a C
    matcher is worth it.
    """

    OURS = "ours"
    ZLIB = "zlib"


_ZLIB_LEVEL = {LosslessMode.BEST_SPEED: 1, LosslessMode.BEST_COMPRESSION: 9}
_ZLIB_MAGIC = b"ZLB1"


@dataclass(frozen=True)
class GzipStage:
    """Configurable lossless stage: ``compress``/``decompress`` byte blobs."""

    mode: LosslessMode = LosslessMode.BEST_SPEED
    backend: LosslessBackend = LosslessBackend.OURS

    def _encoder(self) -> LZ77Encoder:
        if self.mode is LosslessMode.BEST_SPEED:
            return LZ77Encoder.best_speed()
        return LZ77Encoder.best_compression()

    def compress(self, data: bytes) -> bytes:
        if self.backend is LosslessBackend.ZLIB:
            return _ZLIB_MAGIC + zlib.compress(data, _ZLIB_LEVEL[self.mode])
        return deflate(data, self._encoder())

    def decompress(self, blob: bytes) -> bytes:
        if blob[:4] == _ZLIB_MAGIC:
            try:
                return zlib.decompress(blob[4:])
            except zlib.error as exc:
                raise LosslessError(f"corrupt zlib stream: {exc}") from exc
        return inflate(blob)

    def ratio(self, data: bytes) -> float:
        """Convenience: size ratio achieved on ``data`` (>= small epsilon)."""
        if not data:
            return 1.0
        compressed = self.compress(data)
        if not compressed:
            raise LosslessError("compressor produced empty output")
        return len(data) / len(compressed)
