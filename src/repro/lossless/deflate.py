"""DEFLATE-style container: LZ77 tokens + canonical Huffman sections.

The layout differs from RFC 1951 in that the three component streams are
stored as separate sections rather than interleaved bit-by-bit — this keeps
both encode and decode vectorizable — but the alphabets are DEFLATE's:

* literal/length symbols 0..284 (0-255 literals, 256+k for length bucket k),
* distance symbols 0..29,
* raw extra bits for lengths/distances, packed MSB-first in token order.

``inflate(deflate(x)) == x`` for arbitrary byte strings (property-tested).
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import LosslessError
from ..encoding.bitio import pack_codes, unpack_codes
from ..encoding.huffman import HuffmanCodec, HuffmanTable
from .lz77 import LZ77Encoder, TokenStream, MAX_MATCH, MIN_MATCH

__all__ = ["deflate", "inflate", "LENGTH_BASE", "LENGTH_EXTRA", "DIST_BASE", "DIST_EXTRA"]

_MAGIC = b"WDF1"

# DEFLATE length buckets: base length and number of extra bits per bucket.
LENGTH_BASE = np.array(
    [3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59,
     67, 83, 99, 115, 131, 163, 195, 227, 258],
    dtype=np.int64,
)
LENGTH_EXTRA = np.array(
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
     4, 4, 4, 4, 5, 5, 5, 5, 0],
    dtype=np.int64,
)
# DEFLATE distance buckets.
DIST_BASE = np.array(
    [1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385,
     513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577],
    dtype=np.int64,
)
DIST_EXTRA = np.array(
    [0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8,
     9, 9, 10, 10, 11, 11, 12, 12, 13, 13],
    dtype=np.int64,
)

_LITERAL_LIMIT = 256  # litlen symbols >= 256 are length buckets


def _bucketize(values: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Map each value to the index of its containing bucket."""
    idx = np.searchsorted(base, values, side="right") - 1
    if (idx < 0).any():
        raise LosslessError("value below smallest bucket base")
    return idx


def deflate(data: bytes, encoder: LZ77Encoder | None = None) -> bytes:
    """Compress ``data`` into the WDF1 container."""
    encoder = encoder or LZ77Encoder.best_compression()
    tokens = encoder.parse(data)
    return _serialize(tokens, len(data))


def _serialize(tokens: TokenStream, original_len: int) -> bytes:
    kinds = tokens.kinds
    values = tokens.values.astype(np.int64)
    dists = tokens.dists.astype(np.int64)
    match_mask = kinds == 1
    n_tokens = tokens.n_tokens
    n_matches = int(match_mask.sum())

    # Literal/length symbol per token.
    litlen = values.copy()
    if n_matches:
        lens = values[match_mask]
        if (lens < MIN_MATCH).any() or (lens > MAX_MATCH).any():
            raise LosslessError("match length out of range")
        len_idx = _bucketize(lens, LENGTH_BASE)
        litlen[match_mask] = _LITERAL_LIMIT + len_idx
        dist_idx = _bucketize(dists[match_mask], DIST_BASE)
        # Extra bits, interleaved (length-extra, dist-extra) per match.
        ev = np.empty(2 * n_matches, dtype=np.int64)
        eb = np.empty(2 * n_matches, dtype=np.int64)
        ev[0::2] = lens - LENGTH_BASE[len_idx]
        eb[0::2] = LENGTH_EXTRA[len_idx]
        ev[1::2] = dists[match_mask] - DIST_BASE[dist_idx]
        eb[1::2] = DIST_EXTRA[dist_idx]
        nz = eb > 0
        extras_payload, extras_bits = pack_codes(ev[nz], eb[nz])
    else:
        dist_idx = np.empty(0, dtype=np.int64)
        extras_payload, extras_bits = b"", 0

    lit_table = HuffmanTable.from_symbols(litlen) if n_tokens else HuffmanTable(
        np.empty(0, np.int64), np.empty(0, np.int64)
    )
    lit_codec = HuffmanCodec(lit_table)
    lit_payload, lit_bits = lit_codec.encode(litlen) if n_tokens else (b"", 0)

    if n_matches:
        dist_table = HuffmanTable.from_symbols(dist_idx)
        dist_codec = HuffmanCodec(dist_table)
        dist_payload, dist_bits = dist_codec.encode(dist_idx)
    else:
        dist_table = HuffmanTable(np.empty(0, np.int64), np.empty(0, np.int64))
        dist_payload, dist_bits = b"", 0

    out = bytearray(_MAGIC)
    out += struct.pack("<QII", original_len, n_tokens, n_matches)
    for table, payload in (
        (lit_table, lit_payload),
        (dist_table, dist_payload),
    ):
        tbytes = table.to_bytes()
        out += struct.pack("<I", len(tbytes))
        out += tbytes
        out += struct.pack("<I", len(payload))
        out += payload
    out += struct.pack("<I", len(extras_payload))
    out += extras_payload
    return bytes(out)


def inflate(blob: bytes) -> bytes:
    """Decompress a WDF1 container back to the original bytes.

    All framing reads are bounds-checked so a truncated or bit-flipped
    container raises :class:`LosslessError` (or another ``ReproError``
    subtype from the Huffman/bit-IO layers), never ``struct.error``.
    """
    if blob[:4] != _MAGIC:
        raise LosslessError("bad WDF1 magic")
    pos = 4

    def unpack(fmt: str, what: str) -> tuple:
        nonlocal pos
        size = struct.calcsize(fmt)
        if pos + size > len(blob):
            raise LosslessError(f"truncated WDF1 container: {what}")
        out = struct.unpack_from(fmt, blob, pos)
        pos += size
        return out

    def take(n: int, what: str) -> bytes:
        nonlocal pos
        if n < 0 or pos + n > len(blob):
            raise LosslessError(f"truncated WDF1 container: {what}")
        out = blob[pos : pos + n]
        pos += n
        return out

    original_len, n_tokens, n_matches = unpack("<QII", "stream counts")
    if n_matches > n_tokens:
        raise LosslessError("corrupt container: more matches than tokens")
    if original_len > 8 * max(len(blob), 1) * (MAX_MATCH + 1):
        # Even a stream of all-maximal matches cannot expand this far; the
        # length field is corrupt, refuse before allocating the output.
        raise LosslessError(f"implausible original length {original_len}")

    def take_section(what: str) -> tuple[HuffmanTable, bytes]:
        (tlen,) = unpack("<I", f"{what} table length")
        table, _ = HuffmanTable.from_bytes(take(tlen, f"{what} table"))
        (plen,) = unpack("<I", f"{what} payload length")
        return table, take(plen, f"{what} payload")

    lit_table, lit_payload = take_section("literal/length")
    dist_table, dist_payload = take_section("distance")
    (elen,) = unpack("<I", "extra-bits length")
    extras_payload = take(elen, "extra-bits payload")

    if n_tokens == 0:
        if original_len != 0:
            raise LosslessError("empty token stream for non-empty data")
        return b""

    litlen = HuffmanCodec(lit_table).decode(lit_payload, n_tokens)
    match_mask = litlen >= _LITERAL_LIMIT
    if int(match_mask.sum()) != n_matches:
        raise LosslessError("corrupt container: match count mismatch")

    values = litlen.astype(np.int64)
    dists = np.zeros(n_tokens, dtype=np.int64)
    if n_matches:
        dist_idx = HuffmanCodec(dist_table).decode(dist_payload, n_matches)
        if (dist_idx < 0).any() or (dist_idx >= DIST_BASE.size).any():
            raise LosslessError("corrupt container: bad distance symbol")
        len_idx = litlen[match_mask] - _LITERAL_LIMIT
        if (len_idx >= LENGTH_BASE.size).any():
            raise LosslessError("corrupt container: bad length symbol")
        lens = LENGTH_BASE[len_idx].copy()
        match_dists = DIST_BASE[dist_idx].copy()
        # Extra bits are packed in token order, interleaved (length-extra,
        # dist-extra) per match with zero-width fields skipped — recover
        # the widths the same way and unpack the whole section at once.
        widths = np.empty(2 * n_matches, dtype=np.int64)
        widths[0::2] = LENGTH_EXTRA[len_idx]
        widths[1::2] = DIST_EXTRA[dist_idx]
        present = widths > 0
        extras = np.zeros(2 * n_matches, dtype=np.int64)
        if present.any():
            extras[present] = unpack_codes(extras_payload, widths[present])
        lens += extras[0::2]
        match_dists += extras[1::2]
        values[match_mask] = lens
        dists[match_mask] = match_dists

    stream = TokenStream(
        match_mask.astype(np.uint8),
        values.astype(np.int32),
        dists.astype(np.int32),
    )
    if stream.expanded_size() != original_len:
        raise LosslessError(
            f"corrupt container: tokens expand to {stream.expanded_size()} "
            f"bytes, expected {original_len}"
        )
    out = stream.reconstruct()
    if len(out) != original_len:
        raise LosslessError(
            f"corrupt container: expanded to {len(out)} bytes, expected {original_len}"
        )
    return out
