"""Online SZ/ZFP selection (paper ref [53], Tao et al., TPDS'19).

"Neither SZ nor ZFP can always lead to the best compression quality over
the other across multiple fields" — so the selector estimates, per field,
which codec wins under the user's bound and runs that one.  Estimation
compresses a strided sample of the field with every candidate (cheap,
bounded work) and picks the best sample ratio; the full field is then
compressed once with the winner.

Works with any set of this library's compressors; candidates may also be
named by any :data:`repro.codec.registry.REGISTRY` alias and are
instantiated on the fly.  Decompression dispatches on the container's
variant header, so a selected archive needs no side channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence

import numpy as np

from .codec.registry import get_codec
from .errors import ConfigError, ContainerError, DTypeError, ShapeError
from .types import CompressedField

__all__ = ["SelectionResult", "OnlineSelector"]


class _Compressor(Protocol):
    name: str

    def compress(self, data: np.ndarray, eb: float, mode: Any) -> CompressedField: ...

    def decompress(self, compressed: Any) -> np.ndarray: ...


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selected compression."""

    chosen: str
    compressed: CompressedField
    estimates: dict[str, float]  # candidate -> sample ratio
    #: candidates excluded up front because the field's shape/dtype does
    #: not fit them (e.g. waveSZ on 1D data) — not scored, not chosen
    skipped: tuple[str, ...] = ()


class OnlineSelector:
    """Pick the bestfit compressor per field, à la ref [53]."""

    def __init__(self, compressors: Sequence[_Compressor | str]) -> None:
        """Build a selector over compressor instances and/or registry names.

        Strings are resolved through the central codec registry (any
        canonical name, alias or profile, e.g. ``"sz14"`` or
        ``"ZFP-like"``); instances are used as-is.
        """
        if not compressors:
            raise ConfigError("selector needs at least one compressor")
        resolved = [
            get_codec(c) if isinstance(c, str) else c for c in compressors
        ]
        names = [c.name for c in resolved]
        if len(set(names)) != len(names):
            raise ConfigError("compressor names must be unique")
        self._compressors = resolved

    def _sample(self, data: np.ndarray, step: int) -> np.ndarray:
        """A strided sample preserving local structure (contiguous tiles
        along the last axis, strided along the first)."""
        if step <= 1 or data.shape[0] < 2 * step * 2:
            return data
        return np.ascontiguousarray(data[:: step])

    def select(
        self,
        data: np.ndarray,
        eb: float = 1e-3,
        mode: str = "vr_rel",
        *,
        sample_step: int = 4,
    ) -> SelectionResult:
        """Estimate on a sample, compress the full field with the winner.

        The sample keeps full resolution along the fast axes (prediction
        and transform behaviour are local) and strides the slow axis to
        cut the work by ``sample_step``.
        """
        data = np.ascontiguousarray(data)
        sample = self._sample(data, sample_step)
        estimates: dict[str, float] = {}
        skipped: list[str] = []
        for comp in self._compressors:
            try:
                cf = comp.compress(sample, eb, mode)
                estimates[comp.name] = cf.stats.ratio
            except (ShapeError, DTypeError):
                # The field's geometry/dtype does not fit this candidate
                # (e.g. waveSZ on 1D data): exclude it instead of letting
                # one incompatible codec kill the whole estimate.
                skipped.append(comp.name)
            except Exception:
                estimates[comp.name] = 0.0  # candidate unusable on this field
        if not estimates:
            raise ConfigError("no candidate could compress this field")
        best = max(estimates, key=estimates.get)
        if estimates[best] <= 0:
            raise ConfigError("no candidate could compress this field")
        winner = next(c for c in self._compressors if c.name == best)
        return SelectionResult(
            chosen=best,
            compressed=winner.compress(data, eb, mode),
            estimates=estimates,
            skipped=tuple(skipped),
        )

    def decompress(self, payload: CompressedField | bytes) -> np.ndarray:
        """Dispatch on the container's variant header.

        Decoding routes through :func:`repro.streams.decompress_auto` — the
        library's single decode path — after checking the variant is one of
        this selector's candidates.  Candidate instances that are *not* in
        the central registry (hand-built compressors) decode through the
        instance itself.
        """
        from .codec.registry import REGISTRY
        from .streams import decompress_auto

        blob = payload.payload if isinstance(payload, CompressedField) else payload
        variant = REGISTRY.peek_variant(blob)
        match = next(
            (c for c in self._compressors if c.name == variant), None
        )
        if match is None:
            raise ContainerError(
                f"payload variant {variant!r} is not among this selector's "
                f"candidates {[c.name for c in self._compressors]}"
            )
        if variant in REGISTRY:
            return decompress_auto(blob)
        return match.decompress(blob)
