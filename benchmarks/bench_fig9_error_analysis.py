"""Figure 9 — compression-error analysis, waveSZ vs GhostSZ on CLDLOW.

Paper: GhostSZ's compression-error histogram has a tall spike at zero
(the previous-value fit is exact in the constant-valued regions at the
top/bottom of the field) while waveSZ's errors spread evenly across the
bound; spatially, GhostSZ's |error| map is dark exactly where the data is
constant.  The bench regenerates the error histogram and the spatial
exact-hit statistics.
"""

import numpy as np
from common import emit, fmt_row

from repro import GhostSZCompressor, WaveSZCompressor, load_field
from repro.metrics import error_histogram


def test_fig9(benchmark):
    cldlow = load_field("CESM-ATM", "CLDLOW")
    sat = (cldlow == 0) | (cldlow == 1)

    def run():
        out = {}
        for comp in (GhostSZCompressor(), WaveSZCompressor()):
            cf = comp.compress(cldlow, 1e-3, "vr_rel")
            dec = comp.decompress(cf)
            out[comp.name] = dec.astype(np.float64) - cldlow
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [9, 12, 14, 16, 18]
    lines = [fmt_row(["variant", "exact frac", "exact in sat",
                      "rms (sat)", "rms (non-sat)"], widths)]
    stats = {}
    for name, e in errors.items():
        stats[name] = {
            "exact": float((e == 0).mean()),
            "exact_sat": float((e[sat] == 0).mean()),
            "rms_sat": float(np.sqrt((e[sat] ** 2).mean())),
            "rms_non": float(np.sqrt((e[~sat] ** 2).mean())),
        }
        s = stats[name]
        lines.append(fmt_row(
            [name, round(s["exact"], 3), round(s["exact_sat"], 3),
             f"{s['rms_sat']:.2e}", f"{s['rms_non']:.2e}"], widths))

    # Figure 9's mechanism: GhostSZ's exact hits concentrate in the
    # constant-valued (saturated) regions.
    assert stats["GhostSZ"]["exact"] > stats["waveSZ"]["exact"]
    assert stats["GhostSZ"]["exact_sat"] > stats["GhostSZ"]["exact"] * 0.9
    assert stats["GhostSZ"]["rms_sat"] < stats["waveSZ"]["rms_sat"]

    lines.append("")
    lines.append("error histogram (21 bins over ±0.001):")
    for name, e in errors.items():
        _, counts = error_histogram(e, bins=21, value_range=(-1e-3, 1e-3))
        lines.append(f"{name:>9}: {counts.tolist()}")

    # The paper's right-hand panels as ASCII intensity maps: (1) the
    # original data, (2)/(3) |compression error| per variant — GhostSZ's
    # map must be darkest exactly where the data is constant.
    lines.append("")
    lines.append("spatial maps (downsampled; darker = smaller):")
    lines.append("(1) original CLDLOW:")
    lines.extend(_ascii_map(cldlow))
    for i, (name, e) in enumerate(errors.items(), start=2):
        lines.append(f"({i}) |error| {name}:")
        lines.extend(_ascii_map(np.abs(e)))
    emit("fig9_error_analysis", lines)


def _ascii_map(field: np.ndarray, rows: int = 18, cols: int = 60) -> list[str]:
    """Block-mean downsample to an ASCII intensity map."""
    ramp = " .:-=+*#%@"
    h, w = field.shape
    r, c = h // rows, w // cols
    small = field[: rows * r, : cols * c].reshape(rows, r, cols, c).mean((1, 3))
    lo, hi = float(small.min()), float(small.max())
    span = (hi - lo) or 1.0
    idx = ((small - lo) / span * (len(ramp) - 1)).astype(int)
    return ["  " + "".join(ramp[v] for v in row) for row in idx]
