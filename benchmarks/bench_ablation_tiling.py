"""Ablation — band decomposition cost (the OpenMP / multi-lane trade).

Figure 8 scales SZ with OpenMP threads and waveSZ with FPGA lanes; both
decompose the field into independent bands.  This bench measures what
that independence costs in ratio (lost prediction context at seams) as
the band count grows, and demonstrates the random-access payoff.
"""

from common import emit, fmt_row

from repro import SZ14Compressor, load_field
from repro.parallel import decompress_tile, tile_compress


def test_ablation_tiling(benchmark):
    x = load_field("Hurricane", "TCf48")
    comp = SZ14Compressor()

    def run():
        mono = comp.compress(x, 1e-3, "vr_rel").stats.ratio
        rows = [(1, mono)]
        for n in (2, 4, 8):
            rows.append((n, tile_compress(comp, x, 1e-3, n_tiles=n).ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = [7, 8, 13]
    lines = [fmt_row(["bands", "ratio", "vs monolithic"], widths)]
    mono = rows[0][1]
    for n, r in rows:
        lines.append(fmt_row([n, r, f"{100 * r / mono:.1f}%"], widths))

    # Seam overhead grows with band count but stays modest.
    ratios = [r for _, r in rows]
    assert ratios[-1] <= ratios[0] * 1.02
    assert ratios[-1] > 0.6 * ratios[0]

    # Random access: one band decompresses standalone.
    res = tile_compress(comp, x, 1e-3, n_tiles=4)
    band = decompress_tile(comp, res.payload, 2)
    assert band.shape[0] == x.shape[0] // 4
    lines.append("")
    lines.append(f"random access: band 2 of 4 reconstructed standalone "
                 f"({band.nbytes} bytes of field)")
    emit("ablation_tiling", lines)
