"""Extension — rate-distortion curves across variants.

The comparison style of the papers waveSZ cites ([32, 36, 53]): bit rate
vs PSNR over a bound sweep, summarized by a Bjøntegaard-style delta rate.
Checks the structural facts: waveSZ-H*G* tracks SZ-1.4's curve closely
(same algorithm, power-of-two bounds) while GhostSZ needs substantially
more bits at equal quality.
"""

from common import emit, fmt_row

from repro import GhostSZCompressor, SZ14Compressor, WaveSZCompressor, load_field
from repro.metrics import bd_rate_like, rd_sweep

BOUNDS = [1e-2, 1e-3, 1e-4]


def test_rate_distortion(benchmark):
    x = load_field("CESM-ATM", "FLNS")

    def run():
        return {
            "SZ-1.4": rd_sweep(SZ14Compressor(), x, BOUNDS),
            "waveSZ (H*G*)": rd_sweep(
                WaveSZCompressor(use_huffman=True), x, BOUNDS
            ),
            "GhostSZ": rd_sweep(GhostSZCompressor(), x, BOUNDS),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [14, 9, 10, 8]
    lines = [fmt_row(["variant", "eb", "bits/pt", "PSNR"], widths)]
    for name, pts in curves.items():
        for p in pts:
            lines.append(fmt_row(
                [name, f"{p.eb:g}", round(p.bit_rate, 2),
                 round(p.psnr_db, 1)], widths))

    ref = curves["SZ-1.4"]
    bd_wave = bd_rate_like(ref, curves["waveSZ (H*G*)"])
    bd_ghost = bd_rate_like(ref, curves["GhostSZ"])
    lines.append("")
    lines.append(f"BD-rate vs SZ-1.4: waveSZ H*G* {bd_wave:+.1f} %, "
                 f"GhostSZ {bd_ghost:+.1f} %")

    assert abs(bd_wave) < 80, "waveSZ must track the SZ-1.4 curve"
    assert bd_ghost > bd_wave, "GhostSZ needs more bits at equal quality"
    assert bd_ghost > 30
    emit("rate_distortion", lines)
