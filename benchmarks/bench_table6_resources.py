"""Table 6 — ZC706 resource utilization from synthesis.

Paper:              total    waveSZ (3 PQD)   (%)    GhostSZ     (%)
    BRAM_18K        1,090          9          0.84       20       1.83
    DSP48E            900          0          0.00       51       5.67
    FF            437,200      4,473          1.02   12,615       2.89
    LUT           218,600      8,208          3.75   19,718       9.02

The operator-level model (calibrated once, repro.fpga.resources) must
land within 5 % on FF/LUT, exactly on BRAM, zero DSP for waveSZ.
"""

from common import emit, fmt_row

from repro.fpga import ZC706, ghostsz_resources, wavesz_resources

PAPER = {
    "BRAM_18K": (1090, 9, 20),
    "DSP48E": (900, 0, 51),
    "FF": (437200, 4473, 12615),
    "LUT": (218600, 8208, 19718),
}


def test_table6(benchmark):
    w, g = benchmark(lambda: (wavesz_resources(), ghostsz_resources()))
    got = {
        "BRAM_18K": (ZC706.bram_18k, w.bram_18k, g.bram_18k),
        "DSP48E": (ZC706.dsp48e, w.dsp48e, g.dsp48e),
        "FF": (ZC706.ff, w.ff, g.ff),
        "LUT": (ZC706.lut, w.lut, g.lut),
    }
    uw, ug = w.utilization(ZC706), g.utilization(ZC706)
    widths = [9, 8, 8, 7, 8, 7, 22]
    lines = [fmt_row(["resource", "total", "waveSZ", "(%)", "GhostSZ", "(%)",
                      "paper (w/G)"], widths)]
    for res, (total, mw, mg) in got.items():
        pt, pw, pg = PAPER[res]
        lines.append(fmt_row(
            [res, total, mw, round(uw[res], 2), mg, round(ug[res], 2),
             f"{pw}/{pg}"], widths))
        assert total == pt
        if res == "DSP48E":
            assert mw == 0  # base-2: no multipliers/dividers at all
            assert abs(mg - pg) <= 5
        elif res == "BRAM_18K":
            assert (mw, mg) == (pw, pg)
        else:
            assert abs(mw - pw) / pw < 0.05
            assert abs(mg - pg) / pg < 0.05
    emit("table6_resources", lines)
