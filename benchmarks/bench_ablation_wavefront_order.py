"""Ablation — wavefront scheduling: parallelism and result invariance.

Two measurements on the same field:

1. *Result invariance* — wavefront-scheduled PQD produces bit-identical
   codes to the scalar Listing-1 kernel (the paper's claim that only the
   order changes).
2. *Exploitable parallelism* — wall-clock of the wavefront-vectorized
   engine vs the sequential scalar kernel in this Python simulation.  The
   speedup is the software analogue of the FPGA pipeline win: the
   wavefront exposes |column| independent lanes per step.
"""

import time

import numpy as np
from common import emit, fmt_row

from repro.config import QuantizerConfig
from repro.core.kernel import wavefront_pqd
from repro.sz.pqd import pqd_compress

Q = QuantizerConfig()


def test_ablation_wavefront_order(benchmark):
    rng = np.random.default_rng(0)
    x = np.cumsum(np.cumsum(rng.normal(size=(48, 96)), 0), 1).astype(np.float32)
    x /= np.abs(x).max()
    p = 2.0**-10

    t0 = time.perf_counter()
    scalar = wavefront_pqd(x, p, Q)
    t_scalar = time.perf_counter() - t0

    vec_res = benchmark(lambda: pqd_compress(x, p, Q, border="verbatim"))
    t0 = time.perf_counter()
    pqd_compress(x, p, Q, border="verbatim")
    t_vec = time.perf_counter() - t0

    assert (scalar.codes_raster() == vec_res.codes).all()
    assert (scalar.decompressed == vec_res.decompressed).all()

    n_wavefronts = x.shape[0] + x.shape[1] - 1
    avg_parallel = (x.shape[0] - 1) * (x.shape[1] - 1) / n_wavefronts
    widths = [26, 12]
    lines = [
        fmt_row(["metric", "value"], widths),
        fmt_row(["field", f"{x.shape}"], widths),
        fmt_row(["wavefront steps", n_wavefronts], widths),
        fmt_row(["avg points/step", round(avg_parallel, 1)], widths),
        fmt_row(["scalar kernel (s)", round(t_scalar, 4)], widths),
        fmt_row(["vectorized engine (s)", round(t_vec, 4)], widths),
        fmt_row(["speedup", round(t_scalar / t_vec, 1)], widths),
        "",
        "codes bit-identical between schedules: yes",
    ]
    assert t_scalar > t_vec  # the exposed parallelism is real
    emit("ablation_wavefront_order", lines)
