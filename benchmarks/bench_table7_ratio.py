"""Table 7 — compression ratio of GhostSZ / waveSZ-G* / waveSZ-H*G* / SZ-1.4.

Paper (1e-3 VR-REL, borders counted as unpredictable in waveSZ):

    dataset     GhostSZ   G*     H*G*   SZ-1.4
    CESM-ATM       7.9   12.3    29.4    31.2
    Hurricane      6.2   13.2    20.3    21.4
    NYX            6.6   18.3    34.8    33.8

Shape asserted here: H*G* recovers most of SZ-1.4's ratio (the paper's
"similar compression ratios as SZ-1.4"), G* sits between, and GhostSZ is
lowest on the 2D dataset (on the scaled 3D grids the verbatim-border
charge narrows the GhostSZ-vs-G* gap; see EXPERIMENTS.md).
"""

from common import emit, fmt_row

from repro import WaveSZCompressor, load_field

PAPER = {
    "CESM-ATM": (7.9, 12.3, 29.4, 31.2),
    "Hurricane": (6.2, 13.2, 20.3, 21.4),
    "NYX": (6.6, 18.3, 34.8, 33.8),
}
COLS = ["GhostSZ", "waveSZ (G*)", "waveSZ (H*G*)", "SZ-1.4"]


def test_table7(benchmark, dataset_means):
    widths = [10, 9, 12, 14, 8, 30]
    lines = [fmt_row(["dataset"] + COLS + ["paper (G/G*/H*G*/SZ)"], widths)]
    for ds, paper in PAPER.items():
        row = [dataset_means[(ds, v)]["ratio"] for v in COLS]
        lines.append(
            fmt_row([ds] + row + ["/".join(f"{p:.1f}" for p in paper)], widths)
        )
        g, wg, wh, sz = row
        assert wh > wg, f"{ds}: H* must improve over raw G*"
        assert wh > 0.55 * sz, f"{ds}: H*G* must approach SZ-1.4"
        assert g < sz and wg < sz
    lines.append("")
    lines.append("note: absolute ratios are lower than the paper's because the")
    lines.append("synthetic fields are 10x coarser grids (DESIGN.md §6).")
    emit("table7_ratio", lines)

    x = load_field("CESM-ATM", "CLDLOW")
    comp = WaveSZCompressor(use_huffman=True)
    benchmark.pedantic(lambda: comp.compress(x, 1e-3, "vr_rel"),
                       rounds=1, iterations=1)
