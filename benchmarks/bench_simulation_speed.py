"""Meta — wall-clock speed of this Python functional simulation.

Explicitly NOT hardware throughput (the repro band is "functional
simulation only"): this table records how fast the *simulator itself*
runs, so users can budget their sweeps, and demonstrates that the
wavefront vectorization keeps the Python PQD loop at NumPy speed rather
than interpreter speed.
"""

from common import emit, fmt_row

from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    SZ20Compressor,
    WaveSZCompressor,
    load_field,
)
from repro.perf import measure_compressor


def test_simulation_speed(benchmark):
    x = load_field("CESM-ATM", "CLDHGH")

    def run():
        rows = []
        for comp in (SZ14Compressor(), SZ20Compressor(),
                     WaveSZCompressor(use_huffman=True), GhostSZCompressor()):
            timing, _ = measure_compressor(comp, x, 1e-3, "vr_rel")
            rows.append((timing.variant, timing.compress_mb_s,
                         timing.decompress_mb_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = [10, 18, 20]
    lines = [
        "Python wall clock on a 180x360 float32 field — simulator speed,",
        "NOT the modelled FPGA/CPU throughput of Table 5.",
        "",
        fmt_row(["variant", "compress MB/s", "decompress MB/s"], widths),
    ]
    for name, c, d in rows:
        lines.append(fmt_row([name, c, d], widths))
    for name, c, d in rows:
        assert c > 0.05 and d > 0.05, (name, c, d)
    emit("simulation_speed", lines)
