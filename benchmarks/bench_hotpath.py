"""Hot-path kernel bench — reference vs fast, per stage and end to end.

The kernel layer's contract is "same bytes, less time": every
``REPRO_KERNELS=fast`` kernel must produce byte-identical streams while
beating the reference it shadows.  This bench measures both halves on
the sz14 path (the PQD → Huffman → gzip pipeline every SZ variant
shares):

* **stage micro-benchmarks** on the real intermediate streams of the 2D
  smoke field (the Huffman code payload, its gzip input) — Huffman
  encode/decode, LZ77 parse, DEFLATE inflate, timed under both modes;
* **end-to-end** compress/decompress of 1D/2D/3D fields with per-stage
  attribution from ``measure_compressor(stage_timing=True)``.

Results land in ``benchmarks/results/BENCH_kernels.json`` (the perf
trajectory baseline) and a human table.  ``--smoke`` runs only the 2D
field with byte-equality checks and **fails if the fast path regresses
below 1.0x of reference** — the CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.codec.registry import get_codec
from repro.config import QuantizerConfig, resolve_error_bound
from repro.encoding.huffman import HuffmanCodec, HuffmanTable
from repro.kernels import forced
from repro.lossless.deflate import deflate, inflate
from repro.lossless.lz77 import LZ77Encoder
from repro.perf import measure_compressor
from repro.sz.pqd import pqd_compress

EB = 1e-3
MODE = "vr_rel"
CODEC = "sz14"
SMOKE_FIELD = "2d CESM.CLDLOW"

FIELDS = {
    "1d CESM.TS.flat": lambda: load_field("CESM-ATM", "TS").reshape(-1),
    SMOKE_FIELD: lambda: load_field("CESM-ATM", "CLDLOW"),
    "3d Hurricane.CLOUDf48": lambda: load_field("Hurricane", "CLOUDf48"),
}


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _both_modes(fn, repeats: int) -> dict:
    """Time ``fn`` under each dispatch mode (one warmup pass per mode)."""
    out = {}
    for mode in ("reference", "fast"):
        with forced(mode):
            fn()
            out[mode] = _best(fn, repeats)
    out["speedup"] = out["reference"] / max(out["fast"], 1e-12)
    return out


def _stage_micro(field: np.ndarray, repeats: int) -> dict:
    """Micro-time each kernel on the field's real intermediate streams."""
    bound = resolve_error_bound(field, EB, MODE)
    quant = QuantizerConfig()
    pqd = pqd_compress(field, bound.absolute, quant, border="truncate")
    syms = pqd.codes.reshape(-1)
    codec = HuffmanCodec(HuffmanTable.from_symbols(syms))
    with forced("reference"):
        payload, _ = codec.encode(syms)
        blob = deflate(payload, LZ77Encoder.best_speed())

    results = {
        # encode(): table lookups + the bitio.pack_codes kernel
        "huffman_encode_pack_codes": _both_modes(
            lambda: codec.encode(syms), repeats
        ),
        # the huffman.decode kernel (per-symbol loop vs chain walk)
        "huffman_decode": _both_modes(
            lambda: codec.decode(payload, syms.size), repeats
        ),
        # the lz77.parse kernel at the SZ-1.4 gzip effort level
        "lz77_parse_best_speed": _both_modes(
            lambda: LZ77Encoder.best_speed().parse(payload), repeats
        ),
        # inflate: huffman.decode + bitio.unpack_codes + reconstruct
        "inflate": _both_modes(lambda: inflate(blob), repeats),
    }
    # Differential check on the exact bench inputs.
    with forced("reference"):
        enc_ref = codec.encode(syms)
        dec_ref = codec.decode(payload, syms.size)
        blob_ref = deflate(payload, LZ77Encoder.best_speed())
    with forced("fast"):
        enc_fast = codec.encode(syms)
        dec_fast = codec.decode(payload, syms.size)
        blob_fast = deflate(payload, LZ77Encoder.best_speed())
        body_fast = inflate(blob)
    if enc_ref != enc_fast or blob_ref != blob_fast:
        raise AssertionError("fast kernels changed encoded bytes")
    if not np.array_equal(dec_ref, dec_fast) or body_fast != payload:
        raise AssertionError("fast kernels changed decoded values")
    return results


def _end_to_end(field: np.ndarray, repeats: int) -> dict:
    codec = get_codec(CODEC)
    out: dict = {}
    payloads = {}
    for mode in ("reference", "fast"):
        with forced(mode):
            mt, cf = measure_compressor(
                codec,
                field,
                EB,
                MODE,
                repeats=repeats,
                warmup=1,
                stage_timing=True,
            )
        payloads[mode] = cf.payload
        out[mode] = {
            "compress_s": mt.compress_s,
            "decompress_s": mt.decompress_s,
            "compress_stages_s": mt.compress_stages,
            "decompress_stages_s": mt.decompress_stages,
        }
    if payloads["reference"] != payloads["fast"]:
        raise AssertionError(f"{CODEC} payload differs between kernel modes")
    out["compress_speedup"] = out["reference"]["compress_s"] / max(
        out["fast"]["compress_s"], 1e-12
    )
    out["decompress_speedup"] = out["reference"]["decompress_s"] / max(
        out["fast"]["decompress_s"], 1e-12
    )
    return out


def run(smoke: bool = False) -> dict:
    repeats = 2 if smoke else 3
    field_names = [SMOKE_FIELD] if smoke else list(FIELDS)

    smoke_field = FIELDS[SMOKE_FIELD]()
    stage_micro = _stage_micro(smoke_field, repeats)
    e2e = {name: _end_to_end(FIELDS[name](), repeats) for name in field_names}

    report = {
        "bench": "hotpath_kernels",
        "smoke": smoke,
        "workload": {"codec": CODEC, "eb": EB, "mode": MODE},
        "smoke_field": SMOKE_FIELD,
        "stage_micro": stage_micro,
        "end_to_end": e2e,
    }

    widths = (28, 10, 10, 8)
    lines = [
        f"kernel dispatch: REPRO_KERNELS fast vs reference ({CODEC}, eb={EB} {MODE})",
        "",
        "stage micro (2D smoke field streams)",
        fmt_row(("stage", "ref ms", "fast ms", "speedup"), widths),
    ]
    for stage, r in stage_micro.items():
        lines.append(fmt_row(
            (stage, r["reference"] * 1e3, r["fast"] * 1e3,
             f"{r['speedup']:.1f}x"),
            widths,
        ))
    lines += ["", "end to end (byte-identical payloads verified)"]
    widths_e = (24, 10, 10, 8, 10, 10, 8)
    lines.append(fmt_row(
        ("field", "c-ref ms", "c-fast ms", "c-spd",
         "d-ref ms", "d-fast ms", "d-spd"),
        widths_e,
    ))
    for name, r in e2e.items():
        lines.append(fmt_row(
            (name,
             r["reference"]["compress_s"] * 1e3,
             r["fast"]["compress_s"] * 1e3,
             f"{r['compress_speedup']:.1f}x",
             r["reference"]["decompress_s"] * 1e3,
             r["fast"]["decompress_s"] * 1e3,
             f"{r['decompress_speedup']:.1f}x"),
            widths_e,
        ))
    smoke_e2e = e2e[SMOKE_FIELD]
    lines += [
        "",
        "fast-mode stage attribution, 2D smoke field (ms)",
        f"  compress:   " + ", ".join(
            f"{k}={v * 1e3:.1f}"
            for k, v in smoke_e2e["fast"]["compress_stages_s"].items()
        ),
        f"  decompress: " + ", ".join(
            f"{k}={v * 1e3:.1f}"
            for k, v in smoke_e2e["fast"]["decompress_stages_s"].items()
        ),
    ]
    emit("hotpath_kernels", lines)

    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    if smoke:
        failures = []
        if smoke_e2e["compress_speedup"] < 1.0:
            failures.append(
                f"compress regressed: {smoke_e2e['compress_speedup']:.2f}x"
            )
        if smoke_e2e["decompress_speedup"] < 1.0:
            failures.append(
                f"decompress regressed: {smoke_e2e['decompress_speedup']:.2f}x"
            )
        for stage, r in stage_micro.items():
            if r["speedup"] < 1.0:
                failures.append(f"{stage} regressed: {r['speedup']:.2f}x")
        if failures:
            raise AssertionError(
                "fast kernels below 1.0x of reference: " + "; ".join(failures)
            )
    return report


def test_hotpath_kernels():
    run(smoke=True)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="2D field only; exit nonzero if fast < 1.0x of reference",
    )
    args = ap.parse_args()
    try:
        run(smoke=args.smoke)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        raise SystemExit(1)
