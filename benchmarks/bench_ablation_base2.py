"""Ablation — base-2 vs base-10 error bounds (§3.3 design choice).

Measures what the co-optimization trades: the tightened bound loses a
little ratio (it is up to 2x tighter than requested) but removes the
divider and the overbound check from the PQD chain — zero DSPs and a
shorter pipeline in the hardware model.
"""

from common import emit, fmt_row

from repro import WaveSZCompressor, load_field, psnr
from repro.core.pipeline import pqd_latency, wavesz_pqd_stages


def test_ablation_base2(benchmark):
    x = load_field("CESM-ATM", "TS")

    def run():
        out = {}
        for base2 in (True, False):
            comp = WaveSZCompressor(use_huffman=True, base2=base2)
            cf = comp.compress(x, 1e-3, "vr_rel")
            dec = comp.decompress(cf)
            out[base2] = (cf, psnr(x, dec))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [8, 12, 8, 8, 12, 10]
    lines = [fmt_row(["mode", "bound", "ratio", "PSNR", "PQD latency",
                      "divider"], widths)]
    for base2, (cf, p) in results.items():
        stages = wavesz_pqd_stages(base2=base2)
        has_div = any("fdiv" in s.ops for s in stages)
        lines.append(fmt_row(
            ["base-2" if base2 else "base-10",
             f"{cf.bound.absolute:.2e}", cf.stats.ratio, p,
             pqd_latency(stages), "no" if not has_div else "yes"], widths))

    cf2, p2 = results[True]
    cf10, p10 = results[False]
    # Tightening can cost ratio but must improve (or hold) fidelity...
    assert p2 >= p10 - 0.5
    assert cf2.bound.absolute <= cf10.bound.absolute
    # ...and the hardware win is structural:
    assert pqd_latency(wavesz_pqd_stages(True)) < pqd_latency(
        wavesz_pqd_stages(False))
    # The ratio cost of tightening is bounded (a power of two is at most
    # 2x tighter, and entropy grows by at most ~1 bit/point).
    assert cf2.stats.ratio > 0.55 * cf10.stats.ratio
    emit("ablation_base2", lines)
