"""Sharded store scaling — aggregate slice throughput at 1/2/3 shards.

The gateway's perf claim is that tile placement by consistent hashing
turns N shard servers into aggregate read bandwidth: concurrent readers
pull different tiles from different shards, so cold windowed reads scale
with the cluster instead of queueing on one server, while the per-
gateway tile cache keeps warm reads local.  This bench runs in-process
clusters (real loopback sockets) of 1, 2 and 3 shards, drives several
reader threads (one gateway each — a gateway is single-thread by
contract), and measures aggregate cold and warm slice throughput plus
the degraded case with one of three shards down.  Results archive to
``BENCH_store_sharded.json``.

``--smoke`` shrinks the repetitions and exits nonzero if bit-exactness
breaks anywhere, if a degraded read fails, or if 3 shards fall wildly
below the single-shard baseline (a generous structural floor, not a
speedup gate — loopback RTTs on shared CI boxes are noisy).
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.shard import LocalShardCluster
from repro.store import ArrayStore

EB = 1e-3
CODEC = "sz14"
N_TILES = 8
NAME = "cldlow.ts"
# half the 180-row CESM grid: 4 of 8 tiles, spread over the cluster
WINDOW = (slice(0, 90),)


def _aggregate_reads(
    addresses, make_gateway, window, readers: int, reps: int, *, warm: bool
) -> tuple[float, int]:
    """Wall time and bytes for ``readers`` threads x ``reps`` reads.

    Cold mode builds a fresh gateway per read (empty tile cache, new
    sockets); warm mode primes one gateway per thread and then times
    cache-served reads.
    """
    errors: list[BaseException] = []
    moved = [0] * readers
    gws = [None] * readers
    # all threads (and the timer below) rendezvous here once their
    # setup — and, warm, their priming read — is done
    ready = threading.Barrier(readers + 1)

    def reader(i: int) -> None:
        try:
            if warm:
                gws[i] = make_gateway()
                gws[i].read_slice(NAME, window)  # prime the tile cache
                ready.wait()
                for _ in range(reps):
                    out = gws[i].read_slice(NAME, window)
                    moved[i] += out.data.nbytes
            else:
                ready.wait()
                for _ in range(reps):
                    with make_gateway() as gw:
                        out = gw.read_slice(NAME, window)
                        moved[i] += out.data.nbytes
        except BaseException as exc:  # noqa: BLE001 - reported by caller
            errors.append(exc)
            try:
                ready.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(readers)
    ]
    for t in threads:
        t.start()
    try:
        ready.wait()
    except threading.BrokenBarrierError:
        pass
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    for gw in gws:
        if gw is not None:
            gw.close()
    if errors:
        raise errors[0]
    return wall, sum(moved)


def run(smoke: bool = False) -> dict:
    readers = 2 if smoke else 3
    reps = 1 if smoke else 3
    work = Path(tempfile.mkdtemp(prefix="bench-shard-"))
    field = load_field("CESM-ATM", "CLDLOW")
    expect = None
    rows = []
    degraded_row = None
    try:
        local = ArrayStore(work / "local")
        local.put(NAME, field, CODEC, EB, n_tiles=N_TILES)
        expect = local.read_slice(NAME, WINDOW).data

        for n_shards in (1, 2, 3):
            replicas = min(2, n_shards)
            roots = [work / f"c{n_shards}-s{i}" for i in range(n_shards)]
            with LocalShardCluster(roots, replicas=replicas) as cluster:
                with cluster.gateway() as gw:
                    put = gw.put(NAME, field, CODEC, EB, n_tiles=N_TILES)
                    got = gw.read_slice(NAME, WINDOW).data
                    assert np.array_equal(got, expect), (
                        f"{n_shards}-shard slice not bit-exact"
                    )
                cold_s, cold_b = _aggregate_reads(
                    cluster.addresses, cluster.gateway, WINDOW,
                    readers, reps, warm=False,
                )
                warm_s, warm_b = _aggregate_reads(
                    cluster.addresses, cluster.gateway, WINDOW,
                    readers, reps, warm=True,
                )
                row = {
                    "n_shards": n_shards,
                    "replicas": replicas,
                    "readers": readers,
                    "reps": reps,
                    "put_degraded": put.degraded,
                    "stored_bytes": put.stored_bytes,
                    "cold_mbps": cold_b / cold_s / 1e6,
                    "warm_mbps": warm_b / warm_s / 1e6,
                }
                rows.append(row)

                if n_shards == 3:
                    # one of three down, replicas=2: reads must still
                    # answer bit-exactly, through failover
                    cluster.stop_shard(0)
                    t0 = time.perf_counter()
                    with cluster.gateway() as gw:
                        down = gw.read_slice(NAME, WINDOW)
                    down_s = time.perf_counter() - t0
                    assert down.ok and np.array_equal(down.data, expect), (
                        "degraded slice lost data"
                    )
                    degraded_row = {
                        "n_shards": 3,
                        "shards_up": 2,
                        "cold_mbps": down.data.nbytes / down_s / 1e6,
                    }

        widths = [7, 9, 8, 10, 10]
        lines = [
            f"sharded store: CESM CLDLOW x {N_TILES} tiles, {CODEC} @ "
            f"eb {EB:g}; window rows {WINDOW[0].start}..{WINDOW[0].stop}",
            f"aggregate over {readers} reader thread(s) x {reps} rep(s), "
            f"one gateway per thread",
            fmt_row(["shards", "replicas", "degr", "cold MB/s",
                     "warm MB/s"], widths),
        ]
        for r in rows:
            lines.append(fmt_row([
                r["n_shards"], r["replicas"],
                "yes" if r["put_degraded"] else "no",
                round(r["cold_mbps"], 1), round(r["warm_mbps"], 1),
            ], widths))
        if degraded_row is not None:
            lines.append(
                f"one-down (3 shards, replicas=2): "
                f"{degraded_row['cold_mbps']:.1f} MB/s cold, bit-exact"
            )
        emit("store_sharded", lines)

        report = {
            "codec": CODEC,
            "eb": EB,
            "n_tiles": N_TILES,
            "window_rows": [WINDOW[0].start, WINDOW[0].stop],
            "readers": readers,
            "reps": reps,
            "smoke": smoke,
            "configs": rows,
            "degraded_one_down": degraded_row,
        }
        (RESULTS_DIR / "BENCH_store_sharded.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )

        if smoke:
            failures = []
            base = rows[0]["cold_mbps"]
            tri = rows[-1]["cold_mbps"]
            if tri < base * 0.3:
                failures.append(
                    f"3-shard cold throughput collapsed: {tri:.1f} vs "
                    f"{base:.1f} MB/s on one shard"
                )
            for r in rows:
                if r["put_degraded"]:
                    failures.append(
                        f"healthy {r['n_shards']}-shard put acked degraded"
                    )
                if r["warm_mbps"] <= r["cold_mbps"]:
                    failures.append(
                        f"{r['n_shards']}-shard warm reads not faster "
                        f"than cold"
                    )
            if degraded_row is None:
                failures.append("degraded one-down case did not run")
            if failures:
                raise AssertionError(
                    "sharded store gate: " + "; ".join(failures)
                )
        return report
    finally:
        shutil.rmtree(work, ignore_errors=True)


def test_store_sharded():
    run(smoke=True)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep; exit nonzero on bit-exactness or gate failure",
    )
    run(smoke=ap.parse_args().smoke)
