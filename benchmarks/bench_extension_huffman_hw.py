"""Extension — the deferred on-chip customized Huffman stage, quantified.

The paper's conclusion: "We plan to implement the FPGA version for the
customized Huffman encoding, which can further improve compression ratios
especially for high-dimensional datasets."  This bench runs the study the
future work implies: what H*-on-chip would gain (Table 7's H*G* ratios at
line rate) and what it costs (BRAM per lane, hence lane count on the
ZC706).
"""

from common import emit, fmt_row

from repro import WaveSZCompressor, load_field
from repro.fpga.huffman_hw import (
    HuffmanHWModel,
    hstar_lane_budget,
    huffman_hw_resources,
    simulate_huffman_encode,
)
from repro.fpga.timing import wavesz_throughput


def test_extension_huffman_hw(benchmark):
    x = load_field("CESM-ATM", "CLDLOW")

    def run():
        g = WaveSZCompressor(use_huffman=False).compress(x, 1e-3, "vr_rel")
        h = WaveSZCompressor(use_huffman=True).compress(x, 1e-3, "vr_rel")
        return g.stats.ratio, h.stats.ratio

    ratio_g, ratio_h = benchmark.pedantic(run, rounds=1, iterations=1)

    model = HuffmanHWModel()
    res = huffman_hw_resources(model)
    budget = hstar_lane_budget()
    n = 100 * 500 * 500
    huff_rate = model.throughput(n, 4000)
    pqd_rate = wavesz_throughput((100, 500, 500))

    # Functional check: the modelled hardware emits the software bitstream.
    import numpy as np

    syms = np.random.default_rng(0).geometric(0.5, 5000) + 32760
    payload, _ = simulate_huffman_encode(syms)
    assert len(payload) > 0

    widths = [34, 14]
    lines = [
        fmt_row(["metric", "value"], widths),
        fmt_row(["ratio waveSZ G* (CLDLOW)", ratio_g], widths),
        fmt_row(["ratio waveSZ H*G* (CLDLOW)", ratio_h], widths),
        fmt_row(["ratio gain from on-chip H*",
                 f"{ratio_h / ratio_g:.2f}x"], widths),
        fmt_row(["H* encoder BRAM_18K", res.bram_18k], widths),
        fmt_row(["H* throughput (MB/s, modelled)",
                 round(huff_rate.mb_per_s)], widths),
        fmt_row(["PQD lane throughput (MB/s)",
                 round(pqd_rate.mb_per_s)], widths),
        fmt_row(["ZC706 lanes, G* pipeline", budget["lanes_gstar"]], widths),
        fmt_row(["ZC706 lanes, H*G* pipeline", budget["lanes_hstar"]],
                widths),
        "",
        "verdict: H* on-chip lifts the ratio toward SZ-1.4 without rate",
        "loss per lane, but its table/histogram BRAM (~gzip-sized) cuts",
        "the ZC706 from 3 lanes to "
        f"{budget['lanes_hstar']} — the trade the paper deferred.",
    ]
    assert ratio_h > 1.2 * ratio_g
    assert huff_rate.mb_per_s > 0.5 * pqd_rate.mb_per_s
    assert budget["lanes_hstar"] < budget["lanes_gstar"]
    emit("extension_huffman_hw", lines)
