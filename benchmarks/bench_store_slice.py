"""Array-store random access — cold vs warm slice latency, dedup savings.

The store's perf claim is that tile-level random access makes windowed
reads cheap twice over: a cold slice decodes only the tiles its window
overlaps (not the whole field), and a warm slice is served from the
decoded-tile cache without touching a codec at all.  This bench puts a
multi-field CESM batch into a store, times full reads against narrow
slices cold and warm, and archives both the human table and
``BENCH_store.json`` (the seed of the store perf trajectory; later PRs
regress against it).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.store import ArrayStore

EB = 1e-3
CODEC = "sz14"
N_TILES = 8
FIELDS = ("CLDLOW", "CLDHGH", "TS", "PSL")
REPS = 5
# a narrow band: rows 10..22 of the 180-row CESM grid -> 1 of 8 tiles
WINDOW = (slice(10, 22),)


def _time(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_store_slice_latency():
    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        store = ArrayStore(root / "store")
        fields = {f: load_field("CESM-ATM", f) for f in FIELDS}

        put_t0 = time.perf_counter()
        reports = {
            name: store.put(name, data, CODEC, EB, n_tiles=N_TILES)
            for name, data in fields.items()
        }
        put_s = time.perf_counter() - put_t0
        # a second version of every field at the same bound: byte-identical
        # tiles, so the content-addressed area absorbs it for free
        dedup = [
            store.put(f"{name}.v2", data, CODEC, EB, n_tiles=N_TILES)
            for name, data in fields.items()
        ]
        dedup_saved = sum(r.dedup_bytes for r in dedup)
        assert all(r.new_objects == 0 for r in dedup)

        rows = []
        for name, data in fields.items():
            n_rows = WINDOW[0].stop - WINDOW[0].start

            def cold_full():
                store.cache.clear()
                return store.read(name)

            def cold_slice():
                store.cache.clear()
                return store.read_slice(name, WINDOW)

            full_s = _time(cold_full)
            slice_cold_s = _time(cold_slice)

            store.cache.clear()
            store.read_slice(name, WINDOW)  # warm the window's tiles
            decode_before = store.decode_calls
            slice_warm_s = _time(lambda: store.read_slice(name, WINDOW))
            assert store.decode_calls == decode_before, "warm read decoded"

            touched = len(store.read_slice(name, WINDOW).tile_indices)
            rows.append({
                "field": name,
                "shape": list(data.shape),
                "tiles_touched": touched,
                "n_tiles": N_TILES,
                "window_rows": n_rows,
                "full_cold_ms": full_s * 1e3,
                "slice_cold_ms": slice_cold_s * 1e3,
                "slice_warm_ms": slice_warm_s * 1e3,
                "cold_speedup": full_s / slice_cold_s,
                "warm_speedup": full_s / slice_warm_s,
            })

        stored = sum(r.stored_bytes for r in reports.values())
        original = sum(r.original_bytes for r in reports.values())
        widths = [8, 8, 11, 12, 12, 9, 9]
        lines = [
            f"store: {len(FIELDS)} CESM fields x {N_TILES} tiles, "
            f"{CODEC} @ eb {EB:g} ({put_s:.2f} s to put)",
            f"bytes: {original} raw -> {stored} stored; duplicate puts "
            f"saved {dedup_saved} B via content addressing",
            f"window: rows {WINDOW[0].start}..{WINDOW[0].stop} "
            f"({rows[0]['tiles_touched']}/{N_TILES} tiles)",
            fmt_row(["field", "full ms", "slice ms", "warm ms",
                     "cold x", "warm x", "tiles"], widths),
        ]
        for r in rows:
            lines.append(fmt_row([
                r["field"], round(r["full_cold_ms"], 1),
                round(r["slice_cold_ms"], 1),
                round(r["slice_warm_ms"], 2),
                round(r["cold_speedup"], 1), round(r["warm_speedup"], 1),
                f"{r['tiles_touched']}/{N_TILES}",
            ], widths))
        cache = store.cache.stats()
        lines.append(
            f"cache: {cache['hits']} hits / {cache['misses']} misses, "
            f"{cache['resident_bytes']} B resident, "
            f"{cache['evictions']} evictions"
        )
        emit("store_slice", lines)

        # slicing 2/8 tiles cold must beat a cold full read; warm must
        # beat cold (generous floors — CI boxes are noisy)
        for r in rows:
            assert r["cold_speedup"] > 1.5, r
            assert r["warm_speedup"] > r["cold_speedup"], r

        (RESULTS_DIR / "BENCH_store.json").write_text(json.dumps({
            "codec": CODEC,
            "eb": EB,
            "n_tiles": N_TILES,
            "window_rows": [WINDOW[0].start, WINDOW[0].stop],
            "put_s": put_s,
            "original_bytes": original,
            "stored_bytes": stored,
            "dedup_saved_bytes": dedup_saved,
            "cache": cache,
            "fields": rows,
        }, indent=2))
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    test_store_slice_latency()
