"""Ablation — border-point handling (§3.2 design choice).

The paper's model marks the first row/column unpredictable: SZ stores them
through truncation analysis, waveSZ passes them verbatim to gzip for
throughput, production SZ predicts them with lower-dimensional Lorenzo
("padded").  This bench quantifies the ratio/fidelity trade on 2D and 3D
fields, where border fractions differ by an order of magnitude.
"""

import numpy as np
from common import emit, fmt_row

from repro import load_field, psnr
from repro.sz import SZ14Compressor


def test_ablation_border(benchmark):
    fields = {
        "CESM TS (2D)": load_field("CESM-ATM", "TS"),
        "NYX velocity (3D)": load_field("NYX", "velocity_x"),
    }

    def run():
        out = {}
        for fname, x in fields.items():
            for border in ("padded", "truncate", "verbatim"):
                comp = SZ14Compressor(border=border)
                cf = comp.compress(x, 1e-3, "vr_rel")
                dec = comp.decompress(cf)
                out[(fname, border)] = {
                    "ratio": cf.stats.ratio,
                    "psnr": psnr(x, dec),
                    "border_bytes": cf.stats.border_bytes,
                    "border_frac": cf.stats.n_border / x.size,
                }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [18, 9, 8, 8, 13, 12]
    lines = [fmt_row(["field", "border", "ratio", "PSNR", "border bytes",
                      "border frac"], widths)]
    for (fname, border), r in results.items():
        lines.append(fmt_row(
            [fname, border, r["ratio"], r["psnr"], r["border_bytes"],
             f"{r['border_frac']:.4f}"], widths))

    for fname in fields:
        padded = results[(fname, "padded")]
        trunc = results[(fname, "truncate")]
        verb = results[(fname, "verbatim")]
        # Padded mode stores no border stream at all.
        assert padded["border_bytes"] == 0
        # Verbatim costs the most bytes per border point; truncation less.
        assert trunc["border_bytes"] < verb["border_bytes"]
        # On 3D data (large border fraction) padded wins the ratio.
        if "3D" in fname:
            assert padded["ratio"] > trunc["ratio"]
    emit("ablation_border", lines)
