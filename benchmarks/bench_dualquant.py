"""Dual-quant bench — waveSZ-dp vs the classic wavefront PQD path.

The dual-quant refactor's pitch is "same rate/quality, no recurrence":
prequantizing to the eb lattice up front turns the Lorenzo sweep into a
pure data-parallel diff/cumsum chain, so the fused kernels should beat
the classic waveSZ wavefront loop outright while landing the same
rate-distortion point.  This bench measures both halves:

* **rate/PSNR parity** — compression ratio, bit rate, PSNR, and max
  error of ``wavesz-dp`` vs classic ``wavesz`` on the paper's 1D/2D/3D
  fields at the standard working point;
* **throughput** — compress/decompress wall clock for both codecs, plus
  the dp codec's fast-vs-reference kernel speedup with byte-identical
  payloads verified across dispatch modes.

Results land in ``benchmarks/results/BENCH_dualquant.json`` and a human
table.  ``--smoke`` runs only the 2D field and **fails unless the fast
dp kernels hold >= 1.0x of reference and fused dp compress beats the
classic wavefront compress** — the CI perf gate for this codec.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.codec.registry import get_codec
from repro.kernels import forced
from repro.metrics import psnr
from repro.perf import measure_compressor

EB = 1e-3
MODE = "vr_rel"
SMOKE_FIELD = "2d CESM.CLDLOW"

# Classic waveSZ needs >= 2D (the wavefront axis), so the parity sweep
# sticks to 2D/3D fields; dp's 1D support is covered by the test suites.
FIELDS = {
    "2d CESM.TS": lambda: load_field("CESM-ATM", "TS"),
    SMOKE_FIELD: lambda: load_field("CESM-ATM", "CLDLOW"),
    "3d Hurricane.CLOUDf48": lambda: load_field("Hurricane", "CLOUDf48"),
}


def _quality(field: np.ndarray, codec_name: str, repeats: int) -> dict:
    """Rate/quality plus wall clock for one codec on one field."""
    codec = get_codec(codec_name)
    mt, cf = measure_compressor(
        codec, field, EB, MODE, repeats=repeats, warmup=1, stage_timing=True
    )
    out = codec.decompress(cf.payload)
    err = np.abs(out.astype(np.float64) - field.astype(np.float64))
    return {
        "ratio": cf.stats.ratio,
        "bit_rate": cf.stats.bit_rate,
        "psnr_db": psnr(field, out),
        "max_abs_err": float(err.max()),
        "bound_abs": cf.bound.absolute,
        "compress_s": mt.compress_s,
        "decompress_s": mt.decompress_s,
        "compress_stages_s": mt.compress_stages,
        "decompress_stages_s": mt.decompress_stages,
    }


def _dp_kernel_modes(field: np.ndarray, repeats: int) -> dict:
    """Fast vs reference dispatch for the dp codec, bytes verified."""
    codec = get_codec("wavesz-dp")
    out: dict = {}
    payloads = {}
    for mode in ("reference", "fast"):
        with forced(mode):
            mt, cf = measure_compressor(
                codec, field, EB, MODE, repeats=repeats, warmup=1
            )
        payloads[mode] = cf.payload
        out[mode] = {
            "compress_s": mt.compress_s,
            "decompress_s": mt.decompress_s,
        }
    if payloads["reference"] != payloads["fast"]:
        raise AssertionError("wavesz-dp payload differs between kernel modes")
    out["compress_speedup"] = out["reference"]["compress_s"] / max(
        out["fast"]["compress_s"], 1e-12
    )
    out["decompress_speedup"] = out["reference"]["decompress_s"] / max(
        out["fast"]["decompress_s"], 1e-12
    )
    return out


def run(smoke: bool = False) -> dict:
    repeats = 2 if smoke else 3
    field_names = [SMOKE_FIELD] if smoke else list(FIELDS)

    per_field: dict[str, dict] = {}
    for name in field_names:
        field = FIELDS[name]()
        classic = _quality(field, "wavesz", repeats)
        dp = _quality(field, "wavesz-dp", repeats)
        per_field[name] = {
            "classic": classic,
            "dual_quant": dp,
            "compress_speedup_vs_classic": classic["compress_s"] / max(
                dp["compress_s"], 1e-12
            ),
            "decompress_speedup_vs_classic": classic["decompress_s"] / max(
                dp["decompress_s"], 1e-12
            ),
            "ratio_vs_classic": dp["ratio"] / max(classic["ratio"], 1e-12),
            "psnr_delta_db": dp["psnr_db"] - classic["psnr_db"],
        }

    kernel_modes = _dp_kernel_modes(FIELDS[SMOKE_FIELD](), repeats)

    report = {
        "bench": "dualquant",
        "smoke": smoke,
        "workload": {"eb": EB, "mode": MODE},
        "smoke_field": SMOKE_FIELD,
        "fields": per_field,
        "dp_kernel_modes": kernel_modes,
    }

    widths = (22, 9, 8, 8, 9, 9, 8, 8)
    lines = [
        f"dual-quant (waveSZ-dp) vs classic wavefront waveSZ (eb={EB} {MODE})",
        "",
        fmt_row(("field", "codec", "ratio", "bits/pt", "psnr dB",
                 "c ms", "d ms", "c-spd"), widths),
    ]
    for name, r in per_field.items():
        for label, key in (("wavesz", "classic"), ("wavesz-dp", "dual_quant")):
            q = r[key]
            spd = ("" if key == "classic"
                   else f"{r['compress_speedup_vs_classic']:.1f}x")
            lines.append(fmt_row(
                (name, label, f"{q['ratio']:.2f}", f"{q['bit_rate']:.2f}",
                 f"{q['psnr_db']:.1f}", q["compress_s"] * 1e3,
                 q["decompress_s"] * 1e3, spd),
                widths,
            ))
    smoke_dp = per_field[SMOKE_FIELD]["dual_quant"]
    lines += [
        "",
        "dp kernel dispatch on the 2D smoke field "
        f"(compress {kernel_modes['compress_speedup']:.1f}x, "
        f"decompress {kernel_modes['decompress_speedup']:.1f}x, "
        "payloads byte-identical)",
        "",
        "dp per-stage compress attribution (ms): " + ", ".join(
            f"{k}={v * 1e3:.1f}" for k, v in smoke_dp["compress_stages_s"].items()
        ),
    ]
    emit("dualquant", lines)

    (RESULTS_DIR / "BENCH_dualquant.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    if smoke:
        failures = []
        if kernel_modes["compress_speedup"] < 1.0:
            failures.append(
                "dp fast compress below reference: "
                f"{kernel_modes['compress_speedup']:.2f}x"
            )
        if kernel_modes["decompress_speedup"] < 1.0:
            failures.append(
                "dp fast decompress below reference: "
                f"{kernel_modes['decompress_speedup']:.2f}x"
            )
        smoke_row = per_field[SMOKE_FIELD]
        if smoke_row["compress_speedup_vs_classic"] < 1.0:
            failures.append(
                "fused dp compress slower than classic wavefront: "
                f"{smoke_row['compress_speedup_vs_classic']:.2f}x"
            )
        if failures:
            raise AssertionError("dual-quant gate: " + "; ".join(failures))
    return report


def test_dualquant():
    run(smoke=True)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="2D field only; exit nonzero if dp loses to reference/classic",
    )
    args = ap.parse_args()
    try:
        run(smoke=args.smoke)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        raise SystemExit(1)
