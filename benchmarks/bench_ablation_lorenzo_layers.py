"""Ablation — Lorenzo stencil depth (SZ-1.4's multi-layer option).

A negative result worth quantifying: although the 2-layer stencil is
*exact* on per-axis-quadratic surfaces in the open loop, inside the PQD
feedback loop it reads 8 noisy decompressed neighbours with coefficient
magnitudes summing to 15 (vs 3 for 1 layer), so the quantization noise it
re-injects usually outweighs the curvature it removes.  This bench
measures both sides of that trade: open-loop residuals (layer 2 wins)
vs closed-loop ratio (layer 1 wins).
"""

import numpy as np
from common import emit, fmt_row

from repro import SZ14Compressor, load_field
from repro.sz.lorenzo import lorenzo_predict, neighbor_offsets


def test_ablation_lorenzo_layers(benchmark):
    x = load_field("CESM-ATM", "TS").astype(np.float64)
    # A noise-free curvature-dominated surface isolates the stencil's
    # structural reach (layer 2 is exact on it); the real field shows the
    # closed-loop verdict.
    i, j = np.mgrid[0 : x.shape[0], 0 : x.shape[1]]
    quad = 0.01 * i * i + 0.02 * j * j - 0.015 * i * j

    def run():
        out = {}
        for layers in (1, 2):
            resid_q = (quad - lorenzo_predict(quad, layers=layers))[
                layers:, layers:
            ]
            resid_x = (x - lorenzo_predict(x, layers=layers))[
                layers:, layers:
            ]
            comp = SZ14Compressor(layers=layers)
            cf = comp.compress(x.astype(np.float32), 1e-3, "vr_rel")
            _, signs = neighbor_offsets(x.shape, layers=layers)
            out[layers] = {
                "quad_resid": float(np.abs(resid_q).max()),
                "open_loop_std": float(resid_x.std()),
                "ratio": cf.stats.ratio,
                "amplification": float(np.abs(signs).sum()),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [7, 15, 16, 8, 12]
    lines = [fmt_row(["layers", "quad |resid|", "TS open std", "ratio",
                      "noise ampl."], widths)]
    for layers, r in results.items():
        lines.append(fmt_row(
            [layers, f"{r['quad_resid']:.2e}", f"{r['open_loop_std']:.2e}",
             r["ratio"], r["amplification"]], widths))

    lines.append("")
    lines.append("layer 2 removes more structure open-loop but amplifies")
    lines.append("feedback noise 5x; closed-loop, layer 1 wins — why SZ-1.4")
    lines.append("(and waveSZ) default to the 1-layer stencil.")

    r1, r2 = results[1], results[2]
    assert r2["quad_resid"] < 1e-8  # exact on quadratics open-loop...
    assert r1["quad_resid"] > 1e-3  # ...where layer 1 is not
    assert r2["amplification"] == 15.0 and r1["amplification"] == 3.0
    assert r1["ratio"] > r2["ratio"]  # the closed-loop verdict
    emit("ablation_lorenzo_layers", lines)
