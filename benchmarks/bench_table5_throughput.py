"""Table 5 — compression throughput (MB/s), single FPGA lane / single core.

Paper:                 waveSZ   GhostSZ   SZ-1.4
    CESM-ATM             995       185      114
    Hurricane            838       144      122
    NYX                  986       156      125

These come from the analytical hardware model (this reproduction is a
functional simulation — Python wall clock is NOT FPGA throughput; the
model implements the paper's own timing algebra with Δ = 118 cycles and a
250 MHz max-frequency clock, DESIGN.md §3).  Asserted shape: waveSZ within
5 % of every paper value, 6.9-8.7x over the CPU, ~5.8x over GhostSZ on
average, with Hurricane's small-Λ slowdown reproduced.
"""

import numpy as np
from common import emit, fmt_row

from repro.fpga import cpu_sz14_throughput, ghostsz_throughput, wavesz_throughput

SHAPES = {
    "CESM-ATM": (1800, 3600),
    "Hurricane": (100, 500, 500),
    "NYX": (512, 512, 512),
}
PAPER = {
    "CESM-ATM": (995, 185, 114),
    "Hurricane": (838, 144, 122),
    "NYX": (986, 156, 125),
}


def _compute():
    rows = {}
    for name, shape in SHAPES.items():
        rows[name] = (
            wavesz_throughput(shape, dataset=name).mb_per_s,
            ghostsz_throughput(shape, dataset=name).mb_per_s,
            cpu_sz14_throughput(shape, dataset=name).mb_per_s,
        )
    return rows


def test_table5(benchmark):
    rows = benchmark(_compute)
    widths = [10, 8, 9, 8, 20]
    lines = [fmt_row(["dataset", "waveSZ", "GhostSZ", "SZ-1.4",
                      "paper (w/G/SZ)"], widths)]
    speedups_cpu, speedups_ghost = [], []
    for name, (w, g, c) in rows.items():
        pw, pg, pc = PAPER[name]
        lines.append(fmt_row(
            [name, w, g, c, f"{pw}/{pg}/{pc}"], widths))
        assert abs(w - pw) / pw < 0.05, (name, w, pw)
        assert abs(g - pg) / pg < 0.20, (name, g, pg)
        assert abs(c - pc) / pc < 0.10, (name, c, pc)
        speedups_cpu.append(w / c)
        speedups_ghost.append(w / g)
    lines.append("")
    lines.append(f"waveSZ vs SZ-1.4 speedup: {min(speedups_cpu):.1f}x - "
                 f"{max(speedups_cpu):.1f}x  (paper: 6.9x - 8.7x)")
    lines.append(f"waveSZ vs GhostSZ average: {np.mean(speedups_ghost):.1f}x"
                 f"  (paper: 5.8x)")
    assert 6.4 < min(speedups_cpu) and max(speedups_cpu) < 9.2
    assert 4.5 < float(np.mean(speedups_ghost)) < 7.0
    emit("table5_throughput", lines)
