"""Figure 1 — prediction-error distributions on CESM-ATM CLDLOW.

Paper: LP-SZ-1.4 (Lorenzo) has by far the most concentrated errors;
CF-SZ-1.0 is wider; CF-GhostSZ (prediction-value feedback, no error
correction) is the widest.  The bench regenerates the histogram series
(101 bins over the zoomed ±0.01 window of the right panel plus the full
±0.2 window of the left panel) and asserts the concentration ordering.
"""

import numpy as np
from common import emit, fmt_row

from repro import load_field
from repro.metrics import error_histogram, prediction_error_series


def test_fig1(benchmark):
    cldlow = load_field("CESM-ATM", "CLDLOW").astype(np.float64)
    series = benchmark.pedantic(
        lambda: prediction_error_series(cldlow), rounds=1, iterations=1
    )
    widths = [12, 10, 12, 14, 14]
    lines = [fmt_row(["predictor", "std", "P(|e|<0.01)", "P(|e|<0.001)",
                      "peak bin frac"], widths)]
    stats = {}
    for name, errors in series.items():
        e = errors[np.isfinite(errors)]
        centres, counts = error_histogram(e, bins=101, value_range=(-0.01, 0.01))
        stats[name] = {
            "std": float(e.std()),
            "p01": float((np.abs(e) < 0.01).mean()),
            "p001": float((np.abs(e) < 0.001).mean()),
            "peak": float(counts.max() / max(counts.sum(), 1)),
        }
        s = stats[name]
        lines.append(fmt_row(
            [name, f"{s['std']:.4f}", f"{s['p01']:.3f}",
             f"{s['p001']:.3f}", f"{s['peak']:.3f}"], widths))

    # Figure 1's message: Lorenzo >= CF-1.0 > CF-GhostSZ in concentration.
    assert stats["LP-SZ-1.4"]["p01"] > stats["CF-GhostSZ"]["p01"]
    assert stats["CF-SZ-1.0"]["p01"] > stats["CF-GhostSZ"]["p01"]
    assert stats["CF-GhostSZ"]["std"] > 2 * stats["LP-SZ-1.4"]["std"]

    # Archive the zoomed histogram series itself (the plotted curves).
    lines.append("")
    lines.append("zoomed histogram (31 bins, ±0.01), counts per predictor:")
    for name, errors in series.items():
        e = errors[np.isfinite(errors)]
        _, counts = error_histogram(e, bins=31, value_range=(-0.01, 0.01))
        lines.append(f"{name:>12}: {counts.tolist()}")
    emit("fig1_prediction_errors", lines)
