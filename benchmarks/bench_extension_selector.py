"""Extension — online SZ vs ZFP selection (paper ref [53]).

§5.1 cites Tao et al.'s observation that "neither SZ nor ZFP can always
lead to the best compression quality over the other across multiple
fields" and their online selector.  This bench runs both codecs on every
synthetic field, shows the per-field winners, and verifies the selector
picks them from a strided sample.
"""

import numpy as np
from common import emit, fmt_row

from repro import OnlineSelector, SZ14Compressor, ZFPCompressor, load_field
from repro.data import DATASETS

FIELDS = [
    ("CESM-ATM", f) for f in DATASETS["CESM-ATM"].field_names[:4]
] + [("NYX", f) for f in DATASETS["NYX"].field_names[:2]]


def test_extension_selector(benchmark):
    sz, zfp = SZ14Compressor(), ZFPCompressor()
    selector = OnlineSelector([sz, zfp])

    def run():
        rows = []
        for ds, fname in FIELDS:
            x = load_field(ds, fname)
            r_sz = sz.compress(x, 1e-3, "vr_rel").stats.ratio
            r_zfp = zfp.compress(x, 1e-3, "vr_rel").stats.ratio
            sel = selector.select(x, 1e-3, "vr_rel")
            out = selector.decompress(sel.compressed)
            assert np.abs(out.astype(np.float64) - x).max() <= (
                sel.compressed.bound.absolute
            )
            rows.append((f"{ds}/{fname}", r_sz, r_zfp, sel.chosen,
                         sel.compressed.stats.ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = [26, 8, 9, 10, 9]
    lines = [fmt_row(["field", "SZ-1.4", "ZFP-like", "selected", "ratio"],
                     widths)]
    correct = 0
    for name, r_sz, r_zfp, chosen, r_sel in rows:
        lines.append(fmt_row([name, r_sz, r_zfp, chosen, r_sel], widths))
        best = "SZ-1.4" if r_sz >= r_zfp else "ZFP-like"
        correct += chosen == best

    lines.append("")
    lines.append(f"selector picked the true winner on {correct}/{len(rows)} "
                 f"fields from a 1/4-strided sample")
    # The selector must be right on a clear majority and never lose badly.
    assert correct >= len(rows) - 1
    for name, r_sz, r_zfp, chosen, r_sel in rows:
        assert r_sel >= 0.8 * max(r_sz, r_zfp)
    emit("extension_selector", lines)
