"""Extension bench — SZ-2.0 vs SZ-1.4 across error bounds (§2.1 claim).

The paper bases waveSZ on SZ-1.4 because "SZ-2.0 has very similar (or
slightly worse) compression quality/performance compared with SZ-1.4 when
the users set a relatively low error bound".  This bench sweeps bounds on
a CESM-like field and checks that claim on the synthetic data: at loose
bounds the regression-hybrid can win; as the bound tightens the two
converge (and Lorenzo blocks dominate the selection).
"""

from common import emit, fmt_row

from repro import SZ14Compressor, SZ20Compressor, load_field

BOUNDS = [1e-1, 1e-2, 1e-3, 1e-4]


def test_sz20_vs_sz14(benchmark):
    x = load_field("CESM-ATM", "TS")
    c14, c20 = SZ14Compressor(), SZ20Compressor()

    def run():
        rows = []
        for eb in BOUNDS:
            cf14 = c14.compress(x, eb, "vr_rel")
            cf20 = c20.compress(x, eb, "vr_rel")
            rows.append((eb, cf14.stats.ratio, cf20.stats.ratio,
                         cf20.meta["regression_fraction"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = [9, 9, 9, 10, 10]
    lines = [fmt_row(["eb", "SZ-1.4", "SZ-2.0", "2.0/1.4", "reg frac"],
                     widths)]
    for eb, r14, r20, frac in rows:
        lines.append(fmt_row([f"{eb:g}", r14, r20, r20 / r14,
                              round(frac, 2)], widths))

    # §2.1's claim at the tight end: SZ-1.4 is at least comparable.
    eb_t, r14_t, r20_t, frac_t = rows[-1]
    assert r14_t > 0.85 * r20_t
    # Regression's appeal fades as the bound tightens (strictly fewer or
    # equal regression blocks at 1e-4 than at 1e-1).
    assert rows[-1][3] <= rows[0][3] + 0.05
    emit("sz20_vs_sz14", lines)
