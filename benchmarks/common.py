"""Shared reporting helpers for the reproduction benches.

Every bench regenerates one table or figure of the paper and prints it in
a paper-vs-measured layout; the same text is archived under
``benchmarks/results/`` so EXPERIMENTS.md can cite the exact output.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a bench report and archive it under benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def fmt_row(cols: Iterable[object], widths: Iterable[int]) -> str:
    out = []
    for c, w in zip(cols, widths):
        if isinstance(c, float):
            out.append(f"{c:>{w}.1f}")
        else:
            out.append(f"{str(c):>{w}}")
    return "  ".join(out)
