"""Extension — GhostSZ's three-unit load imbalance, quantified (§2.2).

The paper's third criticism of GhostSZ: running three prediction methods
per point "significantly wastes the FPGA computation resources" and the
1:2:4 workload split leaves the lighter units idle.  This bench runs the
unit-level simulation and connects it to the Table 5 throughput model and
the Table 6 resource bill.
"""

from common import emit, fmt_row

from repro.fpga.imbalance import simulate_units
from repro.fpga.resources import ghostsz_resources, wavesz_resources
from repro.fpga.timing import ghostsz_throughput, wavesz_throughput


def test_ghostsz_imbalance(benchmark):
    res = benchmark(lambda: simulate_units(100_000))

    widths = [28, 10, 13]
    lines = [fmt_row(["unit", "work/pt", "utilization"], widths)]
    for u in res.units:
        lines.append(fmt_row(
            [u.name, u.work_per_point, f"{100 * u.utilization:.0f}%"],
            widths))
    lines.append("")
    lines.append(f"effective initiation interval: {res.effective_pii:.1f} "
                 f"cycles/point (the Table 5 model's GhostSZ pII)")
    lines.append(f"idle unit-cycles per 1k points: "
                 f"{res.wasted_unit_cycles // (res.n_points // 1000)}")

    g = ghostsz_resources()
    w = wavesz_resources()
    tg = ghostsz_throughput((100, 500, 500)).mb_per_s
    tw = wavesz_throughput((100, 500, 500)).mb_per_s
    lines.append("")
    lines.append(
        f"resources per MB/s: GhostSZ {g.lut / tg:.0f} LUT/(MB/s) vs "
        f"waveSZ {w.lut / tw:.0f} LUT/(MB/s) — "
        f"{(g.lut / tg) / (w.lut / tw):.0f}x less efficient"
    )

    assert res.effective_pii == 4.0
    assert res.units[0].utilization == 0.25
    assert (g.lut / tg) > 5 * (w.lut / tw)
    emit("ghostsz_imbalance", lines)
