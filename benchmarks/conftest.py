"""Shared fixtures for the reproduction benches.

``evaluation`` runs the full dataset x variant compression matrix exactly
once per session; the per-table benches then format their own views of it
(Tables 1, 7, 8 and Figure 9 all share these runs, like the artifact's
single execution sweep).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro import (
    GhostSZCompressor,
    SZ14Compressor,
    WaveSZCompressor,
    load_field,
    psnr,
    verify_error_bound,
)
from repro.data import DATASETS

EB = 1e-3  # the paper's value-range-based relative bound

VARIANTS = {
    "GhostSZ": GhostSZCompressor(),
    "waveSZ (G*)": WaveSZCompressor(use_huffman=False),
    "waveSZ (H*G*)": WaveSZCompressor(use_huffman=True),
    "SZ-1.4": SZ14Compressor(),
}


@pytest.fixture(scope="session")
def evaluation():
    """(dataset, field, variant) -> {ratio, psnr, max_err, bound, ...}."""
    results: dict[tuple[str, str, str], dict] = {}
    for ds, spec in DATASETS.items():
        for field in spec.field_names:
            x = load_field(ds, field)
            for vname, comp in VARIANTS.items():
                cf = comp.compress(x, EB, "vr_rel")
                out = comp.decompress(cf)
                verify_error_bound(x, out, cf.bound.absolute)
                err = out.astype(np.float64) - x
                results[(ds, field, vname)] = {
                    "ratio": cf.stats.ratio,
                    "psnr": psnr(x, out),
                    "max_err": float(np.abs(err).max()),
                    "bound_abs": cf.bound.absolute,
                    "exact_frac": float((err == 0).mean()),
                    "unpredictable": cf.stats.n_unpredictable,
                    "n_points": x.size,
                    "errors_sample": err.reshape(-1)[:: max(err.size // 20000, 1)],
                }
    return results


@pytest.fixture(scope="session")
def dataset_means(evaluation):
    """Per-(dataset, variant) means over fields — the Table 7/8 rows."""
    means: dict[tuple[str, str], dict] = {}
    for ds, spec in DATASETS.items():
        for vname in VARIANTS:
            rows = [
                evaluation[(ds, f, vname)] for f in spec.field_names
            ]
            means[(ds, vname)] = {
                "ratio": float(np.mean([r["ratio"] for r in rows])),
                "psnr": float(np.mean([r["psnr"] for r in rows])),
            }
    return means
