"""Table 1 — average compression ratio: GhostSZ vs SZ-1.4 at VR-REL 1e-3.

Paper: GhostSZ 7.9 / 6.2 / 6.6 vs SZ-1.4 31.2 / 21.4 / 33.8 — the modern
Lorenzo-based SZ beats the Order-{0,1,2} FPGA design by ~3-5x on every
dataset.  The reproduction asserts the *direction and a >=1.5x factor* on
the synthetic SDRB stand-ins (scaled grids compress less in absolute
terms; see EXPERIMENTS.md).
"""

from common import emit, fmt_row

from repro import SZ14Compressor, load_field

PAPER = {
    "CESM-ATM": (7.9, 31.2),
    "Hurricane": (6.2, 21.4),
    "NYX": (6.6, 33.8),
}


def test_table1(benchmark, dataset_means):
    lines = [
        fmt_row(
            ["dataset", "GhostSZ", "SZ-1.4", "SZ/Ghost",
             "paper Ghost", "paper SZ"],
            [10, 8, 8, 9, 11, 9],
        )
    ]
    for ds, (pg, ps) in PAPER.items():
        g = dataset_means[(ds, "GhostSZ")]["ratio"]
        s = dataset_means[(ds, "SZ-1.4")]["ratio"]
        lines.append(fmt_row([ds, g, s, s / g, pg, ps], [10, 8, 8, 9, 11, 9]))
        assert s > 1.5 * g, f"SZ-1.4 must clearly beat GhostSZ on {ds}"
    emit("table1_ratio_baselines", lines)

    # Timed kernel: one representative SZ-1.4 compression.
    x = load_field("CESM-ATM", "CLDHGH")
    comp = SZ14Compressor()
    benchmark.pedantic(lambda: comp.compress(x, 1e-3, "vr_rel"),
                       rounds=1, iterations=1)
