"""Service throughput scaling — jobs/sec vs worker count.

The serving layer's perf claim is cuSZ-style coarse-grained batch
parallelism: independent fields fan out across a process pool, so
jobs/sec should rise with the worker count until the physical cores run
out.  This bench runs the same 32-job mixed-codec batch of synthetic
CESM fields through the scheduler at 1, 2, 4 and N_cpu workers and
archives both the human table and ``BENCH_service.json`` (the seed of
the service perf trajectory; later PRs regress against it).

A second section exercises the dual-quant *intra-job* axis: one large
field submitted as a single ``wavesz-dp`` job with ``n_tiles > 1`` fans
its bands across the same pool (``scheduler.tile_fanouts``), with the
payload byte-identical to the serial tiled path at every tile count.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.service import make_job, run_batch

EB = 1e-3
CODECS = ("sz14", "wavesz", "zfp-like", "ghostsz")
N_JOBS = 32
FIELDS = ("CLDLOW", "CLDHGH", "TS", "PSL")


def _jobs():
    fields = [load_field("CESM-ATM", f) for f in FIELDS]
    return [
        make_job(
            CODECS[i % len(CODECS)],
            fields[i % len(fields)],
            eb=EB,
            mode="vr_rel",
        )
        for i in range(N_JOBS)
    ]


def _worker_counts() -> list[int]:
    n_cpu = os.cpu_count() or 1
    return sorted({1, 2, 4, n_cpu})


def _tile_fanout_rows(n_cpu: int) -> list[dict]:
    """One big dp job, bands spread across the pool (intra-job axis)."""
    from repro.codec.registry import get_codec
    from repro.parallel import tile_compress

    big = load_field("Hurricane", "CLOUDf48")
    rows = []
    for n_tiles in sorted({1, 2, 4, n_cpu}):
        expect = (
            get_codec("wavesz-dp").compress(big, EB, "vr_rel").payload
            if n_tiles == 1
            else tile_compress(
                get_codec("wavesz-dp"), big, EB, "vr_rel", n_tiles=n_tiles
            ).payload
        )
        t0 = time.perf_counter()
        results, stats = run_batch(
            [make_job("wavesz-dp", big, eb=EB, mode="vr_rel",
                      n_tiles=n_tiles)],
            workers=n_cpu, pool_kind="process",
        )
        wall_s = time.perf_counter() - t0
        assert stats.totals["failed"] == 0
        assert results[0].output == expect  # fan-out must not move a byte
        rows.append({
            "n_tiles": n_tiles,
            "wall_s": wall_s,
            "mb_per_s": big.nbytes / 1e6 / wall_s,
            "tile_fanouts": stats.events.get("scheduler.tile_fanouts", 0),
        })
    return rows


def test_service_scaling():
    jobs = _jobs()
    input_mb = sum(j.input_bytes for j in jobs) / 1e6

    # Reference: the plain single-threaded library loop (no service).
    t0 = time.perf_counter()
    baseline_payloads = []
    from repro.codec.registry import get_codec

    for j in jobs:
        baseline_payloads.append(
            get_codec(j.codec).compress(j.data, j.eb, j.mode).payload
        )
    serial_s = time.perf_counter() - t0

    rows = []
    for n in _worker_counts():
        t0 = time.perf_counter()
        results, stats = run_batch(
            jobs, workers=n, pool_kind="process", queue_size=16
        )
        wall_s = time.perf_counter() - t0
        assert stats.totals["completed"] == N_JOBS
        assert stats.totals["failed"] == 0
        # service must not change a single output byte at any scale
        for r, expect in zip(results, baseline_payloads):
            assert r.output == expect
        rows.append({
            "workers": n,
            "wall_s": wall_s,
            "jobs_per_s": N_JOBS / wall_s,
            "mb_per_s": input_mb / wall_s,
            "p50_s": stats.latency["overall"].p50_s,
            "p99_s": stats.latency["overall"].p99_s,
            "queue_high_water": stats.queue_high_water,
        })

    n_cpu = os.cpu_count() or 1
    if n_cpu >= 2:
        # with real cores available, more workers must mean more jobs/sec
        # (allow 10 % noise between adjacent points)
        by_workers = {r["workers"]: r["jobs_per_s"] for r in rows}
        top = max(w for w in by_workers if w <= n_cpu)
        assert by_workers[top] > by_workers[1] * 1.1, by_workers

    widths = [8, 9, 10, 9, 9, 9, 7]
    lines = [
        f"batch: {N_JOBS} jobs x {len(CODECS)} codecs "
        f"({input_mb:.1f} MB input), queue 16, {n_cpu} cpu(s)",
        f"serial library loop (no service): {serial_s:.2f} s "
        f"({N_JOBS / serial_s:.1f} jobs/s)",
        fmt_row(["workers", "wall s", "jobs/s", "MB/s", "p50 ms",
                 "p99 ms", "hiwater"], widths),
    ]
    for r in rows:
        lines.append(fmt_row([
            r["workers"], round(r["wall_s"], 2), round(r["jobs_per_s"], 1),
            round(r["mb_per_s"], 1), round(r["p50_s"] * 1e3, 1),
            round(r["p99_s"] * 1e3, 1), r["queue_high_water"],
        ], widths))
    fanout_rows = _tile_fanout_rows(n_cpu)
    widths_f = [8, 9, 10, 9]
    lines += [
        "",
        "single wavesz-dp job, bands fanned across the pool "
        f"({n_cpu} workers; payload byte-identical to serial tiling)",
        fmt_row(["n_tiles", "wall s", "MB/s", "fanouts"], widths_f),
    ]
    for r in fanout_rows:
        lines.append(fmt_row([
            r["n_tiles"], round(r["wall_s"], 2), round(r["mb_per_s"], 1),
            r["tile_fanouts"],
        ], widths_f))
    emit("service_scaling", lines)

    (RESULTS_DIR / "BENCH_service.json").write_text(json.dumps({
        "n_jobs": N_JOBS,
        "codecs": list(CODECS),
        "input_mb": input_mb,
        "n_cpu": n_cpu,
        "serial_s": serial_s,
        "serial_jobs_per_s": N_JOBS / serial_s,
        "scaling": rows,
        "dp_tile_fanout": fanout_rows,
    }, indent=2))


if __name__ == "__main__":
    test_service_scaling()
