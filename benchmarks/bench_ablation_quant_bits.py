"""Ablation — quantization-bin width (§4.1 design choice).

SZ-1.4 uses 16-bit codes (65,536 bins); GhostSZ effectively loses 2 bits
to the fit-type field (16,384 bins), which 'will increase the number of
unpredictable data points, degrading the compression ratios in turn'.
This bench sweeps the code width and measures the overflow rate / ratio
curve directly.
"""

from common import emit, fmt_row

from repro import load_field
from repro.config import QuantizerConfig
from repro.sz import SZ14Compressor


def test_ablation_quant_bits(benchmark):
    x = load_field("NYX", "baryon_density")
    bits_sweep = [6, 8, 10, 12, 14, 16]

    def run():
        out = {}
        for bits in bits_sweep:
            comp = SZ14Compressor(quant=QuantizerConfig(bits=bits))
            cf = comp.compress(x, 1e-4, "vr_rel")
            out[bits] = {
                "ratio": cf.stats.ratio,
                "unpred": cf.stats.n_unpredictable,
                "unpred_frac": cf.stats.unpredictable_fraction,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = [5, 9, 8, 13, 13]
    lines = [fmt_row(["bits", "bins", "ratio", "unpredictable",
                      "unpred frac"], widths)]
    for bits, r in results.items():
        lines.append(fmt_row(
            [bits, 1 << bits, r["ratio"], r["unpred"],
             round(r["unpred_frac"], 5)], widths))

    # Fewer bins -> monotonically more overflow outliers.
    unp = [results[b]["unpred"] for b in bits_sweep]
    assert all(a >= b for a, b in zip(unp, unp[1:]))
    # The 14-vs-16 bit difference (GhostSZ's 2-bit loss) costs ratio
    # whenever any overflow occurs.
    assert results[16]["ratio"] >= results[6]["ratio"]
    emit("ablation_quant_bits", lines)
