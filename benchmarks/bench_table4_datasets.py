"""Table 4 — real-world datasets used in evaluation.

Regenerates the dataset summary (fields, type, dimensions, example
fields) from the registry, plus the per-snapshot sizes the paper quotes
in §4.1 (2.0 / 1.9 / 3.0 GB), and validates that every synthetic field
generates with the declared dtype/shape.
"""

import numpy as np
from common import emit, fmt_row

from repro import load_field
from repro.data import DATASETS

PAPER = {
    # dataset: (#fields, dims, snapshot GB)
    "CESM-ATM": (79, (1800, 3600), 2.0),
    "Hurricane": (20, (100, 500, 500), 1.9),
    "NYX": (6, (512, 512, 512), 3.0),
}


def test_table4(benchmark):
    def run():
        rows = []
        for name, spec in DATASETS.items():
            example = load_field(name, spec.field_names[0])
            rows.append((name, spec, example))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = [10, 8, 7, 16, 26]
    lines = [fmt_row(["dataset", "#fields", "type", "dimensions",
                      "example fields"], widths)]
    for name, spec, example in rows:
        p_fields, p_dims, p_gb = PAPER[name]
        lines.append(fmt_row(
            [name, f"{len(spec.fields)}/{p_fields}", str(example.dtype),
             "x".join(map(str, spec.paper_dims)),
             ", ".join(spec.field_names[:2])], widths))
        assert spec.paper_dims == p_dims
        assert spec.paper_fields == p_fields
        assert example.dtype == np.float32  # Table 4: all float32
        assert example.shape == spec.repro_dims
        # Paper snapshot size: #fields x prod(dims) x 4 B.
        gb = spec.paper_fields * np.prod(spec.paper_dims) * 4 / 1e9
        assert abs(gb - p_gb) / p_gb < 0.15, (name, gb)
    lines.append("")
    lines.append("(#fields shows repro roster / paper count; repro dims are")
    lines.append("the DESIGN.md §6 scaled grids)")
    emit("table4_datasets", lines)
