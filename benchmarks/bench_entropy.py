"""Entropy-backend bench — rANS+RLE vs Huffman+gzip on the dp codec.

PR 9 makes the ``codes_entropy`` stage pluggable: the classic
Huffman+gzip coder, a byte-aligned static rANS coder with a zero-run
RLE pre-pass, and an ``auto`` mode that picks per payload from a cheap
histogram-entropy probe.  This bench measures what the swap buys on the
paper's fields at the standard working point:

* **end-to-end** — compress/decompress wall clock and compressed size
  for ``wavesz-dp`` (Huffman), ``wavesz-dp-rans``, and
  ``wavesz-dp-auto`` on the 2D/3D fields;
* **stage attribution** — the ``codes_entropy`` stage split into its
  table-build and stream-coding sub-stages (the probe's cost shows up
  as the difference between the stage total and the two sub-stages);
* **auto honesty** — which backend the probe resolved per field, and
  that ``auto`` never loses to the worse backend.

Results land in ``benchmarks/results/BENCH_entropy.json`` and a human
table.  ``--smoke`` runs only the 2D smoke field and **fails unless
rANS holds >= 1.0x of Huffman compress throughput at equal-or-better
compressed size and auto matches the better backend** — the CI perf
gate for the entropy subsystem.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro import load_field
from repro.codec.registry import get_codec
from repro.metrics import psnr
from repro.perf import measure_compressor
from repro.io.container import Container
from repro.streams import decompress_auto

EB = 1e-3
MODE = "vr_rel"
SMOKE_FIELD = "2d CESM.CLDLOW"

FIELDS = {
    SMOKE_FIELD: lambda: load_field("CESM-ATM", "CLDLOW"),
    "2d CESM.TS": lambda: load_field("CESM-ATM", "TS"),
    "3d Hurricane.CLOUDf48": lambda: load_field("Hurricane", "CLOUDf48"),
}

BACKENDS = {
    "huffman": "wavesz-dp",
    "rans": "wavesz-dp-rans",
    "auto": "wavesz-dp-auto",
}


def _measure(field: np.ndarray, codec_name: str, repeats: int) -> dict:
    """Wall clock, size, quality, and entropy attribution for one codec."""
    codec = get_codec(codec_name)
    mt, cf = measure_compressor(
        codec, field, EB, MODE, repeats=repeats, warmup=2, stage_timing=True
    )
    out = decompress_auto(cf.payload)
    err = np.abs(out.astype(np.float64) - field.astype(np.float64))
    header = Container.from_bytes(cf.payload).header
    stages = mt.compress_stages or {}
    return {
        "resolved_entropy": header.get("entropy", "huffman"),
        "payload_bytes": len(cf.payload),
        "ratio": cf.stats.ratio,
        "bit_rate": cf.stats.bit_rate,
        "psnr_db": psnr(field, out),
        "max_abs_err": float(err.max()),
        "bound_abs": cf.bound.absolute,
        "compress_s": mt.compress_s,
        "decompress_s": mt.decompress_s,
        "entropy_stage_s": stages.get("codes_entropy"),
        "entropy_table_s": stages.get("codes_entropy.table"),
        "entropy_stream_s": stages.get("codes_entropy.stream"),
    }


def run(smoke: bool = False) -> dict:
    repeats = 3 if smoke else 7
    field_names = [SMOKE_FIELD] if smoke else list(FIELDS)

    per_field: dict[str, dict] = {}
    for name in field_names:
        field = FIELDS[name]()
        rows = {b: _measure(field, c, repeats) for b, c in BACKENDS.items()}
        huff, rans, auto = rows["huffman"], rows["rans"], rows["auto"]
        per_field[name] = {
            **rows,
            "rans_compress_speedup": huff["compress_s"] / max(
                rans["compress_s"], 1e-12
            ),
            "rans_decompress_speedup": huff["decompress_s"] / max(
                rans["decompress_s"], 1e-12
            ),
            "rans_size_vs_huffman": rans["payload_bytes"] / max(
                huff["payload_bytes"], 1
            ),
            # auto must land on the smaller payload of the two backends
            "auto_matches_better_size": auto["payload_bytes"] <= min(
                huff["payload_bytes"], rans["payload_bytes"]
            ),
        }

    report = {
        "bench": "entropy",
        "smoke": smoke,
        "workload": {"eb": EB, "mode": MODE},
        "smoke_field": SMOKE_FIELD,
        "fields": per_field,
    }

    widths = (22, 8, 9, 8, 8, 9, 9, 9, 9)
    lines = [
        f"entropy backends on waveSZ-dp (eb={EB} {MODE})",
        "",
        fmt_row(("field", "backend", "resolved", "ratio", "bits/pt",
                 "c ms", "d ms", "tbl ms", "strm ms"), widths),
    ]
    for name, r in per_field.items():
        for backend in BACKENDS:
            q = r[backend]
            tbl = q["entropy_table_s"]
            strm = q["entropy_stream_s"]
            lines.append(fmt_row(
                (name, backend, q["resolved_entropy"], f"{q['ratio']:.2f}",
                 f"{q['bit_rate']:.2f}", q["compress_s"] * 1e3,
                 q["decompress_s"] * 1e3,
                 "" if tbl is None else tbl * 1e3,
                 "" if strm is None else strm * 1e3),
                widths,
            ))
        lines.append(fmt_row(
            (name, "", "",
             f"rans {r['rans_compress_speedup']:.2f}x c",
             f"{r['rans_decompress_speedup']:.2f}x d",
             f"size {r['rans_size_vs_huffman']:.3f}", "", "", ""),
            widths,
        ))
    emit("entropy", lines)

    (RESULTS_DIR / "BENCH_entropy.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    if smoke:
        failures = []
        r = per_field[SMOKE_FIELD]
        if r["rans_compress_speedup"] < 1.0:
            failures.append(
                "rANS compress below Huffman on the smoke field: "
                f"{r['rans_compress_speedup']:.2f}x"
            )
        if r["rans_size_vs_huffman"] > 1.0:
            failures.append(
                "rANS payload larger than Huffman on the smoke field: "
                f"{r['rans_size_vs_huffman']:.3f}x"
            )
        if not r["auto_matches_better_size"]:
            failures.append("auto did not match the better backend's size")
        if failures:
            raise AssertionError("entropy gate: " + "; ".join(failures))
    return report


def test_entropy():
    run(smoke=True)


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="smoke field only; exit nonzero if rANS loses to Huffman",
    )
    args = ap.parse_args()
    try:
        run(smoke=args.smoke)
    except AssertionError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        raise SystemExit(1)
