"""Table 8 — PSNR (dB) at VR-REL 1e-3.

Paper:  GhostSZ 73.9/70.6/74.5, waveSZ 65.1/66.0/66.5, SZ-1.4 64.9/65.0/65.2.

Shape asserted: every variant sits in the 60-80 dB band implied by the
bound; waveSZ and SZ-1.4 are similar; GhostSZ is not the worst (its
exact previous-value hits in constant regions concentrate its errors —
Figure 9's mechanism).
"""

from common import emit, fmt_row

from repro import psnr, load_field, GhostSZCompressor

PAPER = {
    "CESM-ATM": (73.9, 65.1, 64.9),
    "Hurricane": (70.6, 66.0, 65.0),
    "NYX": (74.5, 66.5, 65.2),
}
COLS = ["GhostSZ", "waveSZ (G*)", "SZ-1.4"]


def test_table8(benchmark, dataset_means):
    widths = [10, 9, 12, 8, 22]
    lines = [fmt_row(["dataset"] + COLS + ["paper (G/wave/SZ)"], widths)]
    for ds, paper in PAPER.items():
        row = [dataset_means[(ds, v)]["psnr"] for v in COLS]
        lines.append(
            fmt_row([ds] + row + ["/".join(f"{p:.1f}" for p in paper)], widths)
        )
        g, w, s = row
        assert all(60 < v < 82 for v in row), (ds, row)
        assert abs(w - s) < 5.0, f"{ds}: waveSZ and SZ-1.4 must be similar"
    emit("table8_psnr", lines)

    x = load_field("CESM-ATM", "CLDLOW")
    comp = GhostSZCompressor()
    cf = comp.compress(x, 1e-3, "vr_rel")
    out = comp.decompress(cf)
    benchmark.pedantic(lambda: psnr(x, out), rounds=3, iterations=1)
