"""Figures 3-5 — memory layouts and Manhattan-distance dependency maps.

Regenerates, on the paper's own 6x10 demo grid:

* Figure 3b — the original raster layout's L1 map (dependencies cross
  every column: raster order stalls);
* Figure 4  — GhostSZ's rowwise pivots (per-row distances = column index);
* Figure 5  — the wavefront layout, where each column holds exactly one
  L1 level and is dependency-free.
"""

import numpy as np
from common import emit

from repro.core.wavefront import build_layout
from repro.sz.lorenzo import neighbor_offsets
from repro.sz.wavefront_index import manhattan_grid


def test_fig3_4_5(benchmark):
    shape = (6, 10)
    md, layout = benchmark(
        lambda: (manhattan_grid(shape), build_layout(shape))
    )
    lines = ["Figure 3b — L1 distance of each cell (6x10, raster layout):"]
    for row in md:
        lines.append("  " + " ".join(f"{v:2d}" for v in row))

    # Figure 3's point: raster order conflicts with the dependency-free
    # path — consecutive raster cells differ in L1 by exactly 1, so a
    # row-major sweep always crosses dependency levels.
    raster_l1 = md.reshape(-1)
    diffs_within_rows = np.abs(np.diff(md, axis=1))
    assert (diffs_within_rows == 1).all()

    lines.append("")
    lines.append("Figure 4b — GhostSZ rowwise L1 (pivot per row): every")
    lines.append("column shares one distance, so columns pipeline freely:")
    ghost_l1 = np.tile(np.arange(shape[1]), (shape[0], 1))
    for row in ghost_l1:
        lines.append("  " + " ".join(f"{v:2d}" for v in row))

    lines.append("")
    lines.append("Figure 5 — wavefront columns (cells listed per column):")
    for t in range(layout.n_cols):
        cells = [divmod(int(f), shape[1]) for f in layout.column(t)]
        lines.append(f"  col {t:2d} (L1={t:2d}): " +
                     " ".join(f"({i},{j})" for i, j in cells))
        # Each wavefront column holds exactly one L1 level...
        assert all(i + j == t for i, j in cells)

    # ...and is mutually dependency-free under the Lorenzo stencil.
    offsets, _ = neighbor_offsets(shape)
    for t in range(layout.n_cols):
        col = set(layout.column(t).tolist())
        assert not any((f - int(o)) in col for f in col for o in offsets)
    emit("fig3_4_5_layouts", lines)
