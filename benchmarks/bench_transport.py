"""Dispatch-overhead microbench: pickled arrays vs shared-memory refs.

Isolates what the zero-copy transport actually buys: the cost of moving
one field to a process-pool worker and getting an acknowledgement back,
with the compression work replaced by a touch function (attach the
field, read one element).  Three channels:

``pickle``
    the classic path — the full array pickles through the executor pipe;
``shm``
    one ``memcpy`` into a pooled arena segment, then a tiny `FieldRef`
    crosses the pipe (what `encode_job` does per job);
``shm-reuse``
    the ref alone — the field is already resident (the server's
    socket→shm ingest path), so dispatch moves ~100 bytes.

A second section times an end-to-end small-job batch through
``run_batch`` with micro-batching off vs on, counting worker dispatches.

``--smoke`` gates the transport claim: shm per-job dispatch overhead
must be <= 0.5x pickle (a >= 2x reduction) on the smoke field.
Archives ``BENCH_transport.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from common import RESULTS_DIR, emit, fmt_row

from repro.service import make_job, run_batch
from repro.service.shm import ShmArena, ShmTransport, touch_array, touch_ref

#: 4 MiB float32 — a mid-size CESM-like field; big enough that copies
#: dominate dispatch, small enough for quick iteration.
FIELD_SHAPE = (1024, 1024)
ITERS = 20
WARMUP = 3
N_SMALL_JOBS = 32


def _per_job_ms(fn, iters: int = ITERS, warmup: int = WARMUP) -> float:
    for _ in range(warmup):
        fn()
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters * 1e3


def _dispatch_rows(field: np.ndarray) -> dict:
    pool = ProcessPoolExecutor(max_workers=1)
    transport = ShmTransport(min_bytes=1)
    arena = transport.arena
    expect = float(field.ravel()[0])
    try:
        def via_pickle() -> None:
            assert pool.submit(touch_array, field).result() == expect

        def via_shm() -> None:
            ref = arena.put_array(field)
            try:
                assert pool.submit(touch_ref, ref).result() == expect
            finally:
                arena.release(ref.segment)

        resident = arena.put_array(field)  # the server-ingest scenario

        def via_shm_reuse() -> None:
            assert pool.submit(touch_ref, resident).result() == expect

        pickle_ms = _per_job_ms(via_pickle)
        shm_ms = _per_job_ms(via_shm)
        reuse_ms = _per_job_ms(via_shm_reuse)
        arena.release(resident.segment)
    finally:
        pool.shutdown()
        transport.close()
    return {
        "pickle_ms_per_job": pickle_ms,
        "shm_ms_per_job": shm_ms,
        "shm_reuse_ms_per_job": reuse_ms,
        "speedup_shm": pickle_ms / shm_ms,
        "speedup_shm_reuse": pickle_ms / reuse_ms,
    }


def _batching_rows() -> dict:
    rng = np.random.default_rng(11)
    jobs = [
        make_job("sz10", rng.normal(size=(16, 16)).astype(np.float32),
                 eb=1e-3)
        for _ in range(N_SMALL_JOBS)
    ]
    out = {}
    for label, batch_bytes in (("off", 0), ("on", 1 << 20)):
        t0 = time.perf_counter()
        results, stats = run_batch(
            jobs, workers=2, pool_kind="process", batch_bytes=batch_bytes
        )
        wall_s = time.perf_counter() - t0
        assert stats.totals["failed"] == 0
        payloads = [r.output for r in results]
        if "payloads" in out:
            assert payloads == out["payloads"]  # batching is invisible
        out["payloads"] = payloads
        out[label] = {
            "wall_s": wall_s,
            "jobs_per_s": N_SMALL_JOBS / wall_s,
            "dispatches": stats.events.get(
                "batch.dispatches", N_SMALL_JOBS
            ) if batch_bytes else N_SMALL_JOBS,
            "occupancy": stats.gauges.get("batch.occupancy", 1.0),
        }
    del out["payloads"]
    return out


def test_transport(smoke: bool = False) -> None:
    if not ShmArena.available():  # pragma: no cover - no /dev/shm
        print("shared memory unavailable; transport bench skipped")
        return
    field = np.random.default_rng(5).normal(
        size=FIELD_SHAPE
    ).astype(np.float32)
    dispatch = _dispatch_rows(field)
    batching = _batching_rows()
    n_cpu = os.cpu_count() or 1

    widths = [10, 12, 10]
    lines = [
        f"per-job dispatch round-trip, {field.nbytes / 1e6:.1f} MB field, "
        f"1 worker, {ITERS} iters ({n_cpu} cpu(s))",
        fmt_row(["channel", "ms/job", "vs pickle"], widths),
        fmt_row(["pickle", round(dispatch["pickle_ms_per_job"], 2),
                 "1.0x"], widths),
        fmt_row(["shm", round(dispatch["shm_ms_per_job"], 2),
                 f"{dispatch['speedup_shm']:.1f}x"], widths),
        fmt_row(["shm-reuse", round(dispatch["shm_reuse_ms_per_job"], 2),
                 f"{dispatch['speedup_shm_reuse']:.1f}x"], widths),
        "",
        f"{N_SMALL_JOBS} small jobs (1 KB each), 2 process workers, "
        "micro-batching off vs on (byte-identical outputs asserted)",
        fmt_row(["batching", "wall s", "jobs/s", "dispatch"],
                [10, 9, 9, 9]),
    ]
    for label in ("off", "on"):
        r = batching[label]
        lines.append(fmt_row([
            label, round(r["wall_s"], 2), round(r["jobs_per_s"], 1),
            r["dispatches"],
        ], [10, 9, 9, 9]))
    emit("transport", lines)

    (RESULTS_DIR / "BENCH_transport.json").write_text(json.dumps({
        "field_shape": list(FIELD_SHAPE),
        "field_mb": field.nbytes / 1e6,
        "iters": ITERS,
        "n_cpu": n_cpu,
        "dispatch": dispatch,
        "batching": batching,
        "note": (
            "dispatch = pool round-trip with a touch function; "
            "compression excluded so the channel cost is isolated"
        ),
    }, indent=2))

    if smoke:
        # the transport claim: shm dispatch overhead <= 0.5x pickle
        assert dispatch["shm_ms_per_job"] <= 0.5 * dispatch[
            "pickle_ms_per_job"
        ], (
            f"shm dispatch {dispatch['shm_ms_per_job']:.2f} ms/job not "
            f"<= 0.5x pickle {dispatch['pickle_ms_per_job']:.2f} ms/job"
        )
        print("smoke gate passed: shm dispatch <= 0.5x pickle")


if __name__ == "__main__":
    test_transport(smoke="--smoke" in sys.argv[1:])
