"""Table 2 — SZ variants: functionality modules and design goals.

Regenerates the feature matrix from the variant registry and checks the
distinguishing cells the paper's comparison hinges on.
"""

from common import emit

from repro.variants import VARIANTS, Feature, feature_matrix


def test_table2(benchmark):
    rows = benchmark(feature_matrix)
    features = [f for f in Feature]
    lines = []
    header = f"{'feature':<28} {'scope':<5} " + " ".join(
        f"{v:<10}" for v in VARIANTS
    )
    lines.append(header)
    mark = {"required": "  required", "optional": "  optional*", "": "  -"}
    for feat in features:
        cells = []
        for row in rows:
            cells.append(mark[row[feat.label]][:10])
        lines.append(
            f"{feat.label:<28} ({feat.scope})  " + " ".join(
                f"{c:<10}" for c in cells
            )
        )

    # The distinguishing cells of the comparison:
    assert VARIANTS["waveSZ"].uses(Feature.MEMORY_LAYOUT_TRANSFORM)
    assert not VARIANTS["GhostSZ"].uses(Feature.MEMORY_LAYOUT_TRANSFORM)
    assert VARIANTS["waveSZ"].uses(Feature.BASE2_MAPPING)
    assert VARIANTS["GhostSZ"].uses(Feature.PREDICTION_WRITEBACK)
    assert VARIANTS["waveSZ"].uses(Feature.DECOMPRESSION_WRITEBACK)
    emit("table2_variants", lines)
