"""Table 2 — SZ variants: functionality modules and design goals.

Regenerates the feature matrix from the variant registry and checks the
distinguishing cells the paper's comparison hinges on.  A second matrix
is rendered from the *live* pipeline specs in the codec registry: each
cell names the pipeline stage that realizes the feature, so the table
documents the implementation, not just the paper.
"""

from common import emit

from repro.codec.registry import REGISTRY
from repro.variants import VARIANTS, Feature, feature_matrix


def test_table2(benchmark):
    rows = benchmark(feature_matrix)
    features = [f for f in Feature]
    lines = []
    header = f"{'feature':<28} {'scope':<5} " + " ".join(
        f"{v:<10}" for v in VARIANTS
    )
    lines.append(header)
    mark = {"required": "  required", "optional": "  optional*", "": "  -"}
    for feat in features:
        cells = []
        for row in rows:
            cells.append(mark[row[feat.label]][:10])
        lines.append(
            f"{feat.label:<28} ({feat.scope})  " + " ".join(
                f"{c:<10}" for c in cells
            )
        )

    # The distinguishing cells of the comparison:
    assert VARIANTS["waveSZ"].uses(Feature.MEMORY_LAYOUT_TRANSFORM)
    assert not VARIANTS["GhostSZ"].uses(Feature.MEMORY_LAYOUT_TRANSFORM)
    assert VARIANTS["waveSZ"].uses(Feature.BASE2_MAPPING)
    assert VARIANTS["GhostSZ"].uses(Feature.PREDICTION_WRITEBACK)
    assert VARIANTS["waveSZ"].uses(Feature.DECOMPRESSION_WRITEBACK)
    emit("table2_variants", lines)


def test_table2_live_pipelines():
    """Feature matrix as implemented: Table 2 row -> realizing stage."""
    specs = {s.table2: s for s in REGISTRY.specs() if s.table2 is not None}
    assert set(specs) == set(VARIANTS)

    lines = []
    header = f"{'feature':<28} " + " ".join(
        f"{spec.variant:<16}" for spec in specs.values()
    )
    lines.append(header)
    for feat in Feature:
        cells = []
        for table2, spec in specs.items():
            row = VARIANTS[table2]
            stage = spec.stage_for(feat)
            if stage is not None:
                cells.append(stage)
            elif feat in spec.unmodeled:
                cells.append("(unmodeled)")
            elif row.uses(feat):
                cells.append("(optional)")
            else:
                cells.append("-")
        lines.append(
            f"{feat.label:<28} " + " ".join(f"{c:<16}" for c in cells)
        )

    # Every spec honours its Table 2 row: required features are realized
    # by a stage or explicitly declared unmodeled.
    for table2, spec in specs.items():
        for feat in VARIANTS[table2].required:
            assert spec.stage_for(feat) or feat in spec.unmodeled, (
                table2, feat,
            )

    # The paper's headline cells, now asserted against the implementation:
    wave = specs["waveSZ"]
    assert wave.stage_for(Feature.MEMORY_LAYOUT_TRANSFORM) == "wavefront_order"
    assert wave.stage_for(Feature.BASE2_MAPPING) == "bound"
    assert specs["GhostSZ"].stage_for(Feature.PREDICTION_WRITEBACK)
    assert specs["SZ-2.0+"].stage_for(Feature.LINEAR_REGRESSION)
    emit("table2_variants_live", lines)
