"""Figure 6 / Listing 1 — head/body/tail timing with pII = 1.

Event-driven simulation of the wavefront pipeline against the closed-form
start/end cycles of Figure 6: body points start at c*Λ+r and end at
(c+1)*Λ+r-1; the body loop runs with zero stalls; head/tail (imperfect
loops) stall but involve far fewer points.
"""

from common import emit, fmt_row

from repro.core.layout import LoopPartition, end_cycle, start_cycle
from repro.fpga.hls import HLSLoopNest, simulate_columns


def test_fig6(benchmark):
    d0, d1 = 16, 64
    part = LoopPartition(d0, d1)
    lam = part.lam

    sim = benchmark(
        lambda: simulate_columns([lam] * len(part.body_columns), delta=lam)
    )

    lines = [f"grid {d0}x{d1}: Λ = {lam}, spans = {part.spans()}"]
    lines.append("")
    lines.append("body-loop timing vs Figure 6 closed forms (Δ = Λ, pII = 1):")
    widths = [4, 4, 11, 10, 9, 8]
    lines.append(fmt_row(["col", "row", "sim start", "c*Λ+r", "sim end",
                          "(c+1)Λ+r-1"], widths))
    for c in (0, 1, len(part.body_columns) - 1):
        for r in (0, lam // 2, lam - 1):
            s, f = int(sim.start[c][r]), int(sim.finish[c][r]) - 1
            cs, ce = start_cycle(r, c, lam), end_cycle(r, c, lam)
            lines.append(fmt_row([c, r, s, cs, f, ce], widths))
            assert s == cs and f == ce
    assert sim.stall_cycles == 0
    lines.append("")
    lines.append(f"body stall cycles: {sim.stall_cycles} (zero-stall loop)")

    # The HLS scheduler view of Listing 1's three loop nests:
    lines.append("")
    lines.append("HLS synthesis summary (Listing 1 loop nests):")
    body = HLSLoopNest("BodyV", trip_count=lam, latency=lam,
                       dependence_distance=lam, target_pii=1)
    head = HLSLoopNest("HeadV", trip_count=lam // 2, latency=lam,
                       dependence_distance=lam // 2, target_pii=1)
    for nest in (head, body):
        lines.append("  " + nest.report())
    assert body.achieved_pii == 1  # the perfect loop meets pII=1
    assert head.achieved_pii > 1  # imperfect loops get relaxed (§3.3)
    emit("fig6_timing", lines)
