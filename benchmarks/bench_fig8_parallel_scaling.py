"""Figure 8 — parallel compression throughput, 1-32 lanes/cores.

Paper: SZ-1.4 (omp) scales sublinearly (59 % efficiency at 32 cores);
GhostSZ and waveSZ scale linearly until the PCIe link saturates —
reference lines at PCIe gen2 x4 (~2 GB/s, the ZC706's own link) and
gen3 x4 (~3.9 GB/s).  Only the 3D datasets appear (SZ's OpenMP supports
3D only).
"""

from common import emit, fmt_row

from repro.fpga import (
    PCIE_GEN2_X4,
    PCIE_GEN3_X4,
    cpu_sz14_throughput,
    ghostsz_throughput,
    scale_lanes,
    wavesz_throughput,
)

SHAPES = {"Hurricane": (100, 500, 500), "NYX": (512, 512, 512)}
PARALLELISM = [1, 2, 4, 8, 16, 32]


def _series(shape):
    w1 = wavesz_throughput(shape).mb_per_s
    g1 = ghostsz_throughput(shape).mb_per_s
    rows = []
    for n in PARALLELISM:
        omp = cpu_sz14_throughput(shape, n_cores=n).mb_per_s
        wave = scale_lanes("waveSZ", w1, n, pcie=PCIE_GEN3_X4)
        ghost = scale_lanes("GhostSZ", g1, n, pcie=PCIE_GEN3_X4)
        rows.append((n, omp, wave.mb_per_s, wave.limited_by,
                     ghost.mb_per_s, ghost.limited_by))
    return rows


def test_fig8(benchmark):
    all_rows = benchmark(lambda: {ds: _series(s) for ds, s in SHAPES.items()})
    widths = [10, 4, 12, 10, 9, 10, 9]
    lines = [
        f"reference lines: {PCIE_GEN2_X4.label()} = {PCIE_GEN2_X4.mb_per_s:.0f}"
        f" MB/s (ZC706 peak), {PCIE_GEN3_X4.label()} = "
        f"{PCIE_GEN3_X4.mb_per_s:.0f} MB/s",
        fmt_row(["dataset", "n", "SZ-1.4(omp)", "waveSZ", "limit",
                 "GhostSZ", "limit"], widths),
    ]
    for ds, rows in all_rows.items():
        for n, omp, wv, wl, gh, gl in rows:
            lines.append(fmt_row([ds, n, omp, wv, wl, gh, gl], widths))
        # Shape assertions per dataset:
        omp_eff = rows[-1][1] / (32 * rows[0][1])
        assert 0.55 < omp_eff < 0.65, "OpenMP efficiency ~59 % at 32 cores"
        # waveSZ reaches a hard cap while below-linearity only comes from
        # the modelled limits (PCIe / BRAM lanes), never silently.
        assert rows[-1][3] in ("pcie", "bram")
        # FPGA curves dominate the CPU at every parallelism level.
        for n, omp, wv, _, gh, _ in rows:
            assert wv > omp
    emit("fig8_parallel_scaling", lines)
