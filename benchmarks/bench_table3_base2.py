"""Table 3 — binary representation of decimal error bounds.

Deterministic reproduction of the mantissa/exponent table that motivates
the base-2 co-optimization: decimal bounds have 0-1-mixed mantissas (full
divider needed); their power-of-two tightenings are exponent-only.
"""

from common import emit, fmt_row

from repro.core.base2 import TABLE3_BASES, binary_representation, pow2_tighten

PAPER = {
    1e-1: ("1.1001100110011", -4),
    1e-2: ("1.0100011110101", -7),
    1e-3: ("1.0000011000100", -10),
    1e-4: ("1.1010001101101", -14),
    1e-5: ("1.0100111110001", -17),
    1e-6: ("1.0000110001101", -20),
    1e-7: ("1.1010110101111", -24),
}


def test_table3(benchmark):
    rows = benchmark(
        lambda: {b: binary_representation(b) for b in TABLE3_BASES}
    )
    widths = [10, 22, 5, 16]
    lines = [fmt_row(["decimal", "binary mantissa", "exp", "tightened to"],
                     widths)]
    for base, (mant, exp) in rows.items():
        p_mant, p_exp = PAPER[base]
        assert mant == p_mant, (base, mant, p_mant)
        assert exp == p_exp
        t, k = pow2_tighten(base)
        lines.append(fmt_row(
            [f"{base:g}", f"({mant}...)_2", exp, f"2^{k}"], widths))
    lines.append("")
    lines.append("all rows match paper Table 3 exactly.")
    emit("table3_base2", lines)
